"""Router factory and batch routing engine.

The evaluation compares a fixed palette of methods (Section 5.1); the
structured form of a method — which graph, which heuristic family, which δ —
is :class:`~repro.routing.methods.MethodSpec`, and every entry point here
accepts a spec or its paper-style name (``"V-BS-60"``) interchangeably.
:func:`create_router` maps a method onto a configured router instance so the
evaluation harness, the examples and user code all build methods the same way.

:class:`RoutingEngine` is the serving facade on top of the factory: it owns
one PACE graph (plus its V-path closure), builds routers lazily, and shares a
single destination-keyed :class:`HeuristicCache` across *all* of them, so the
expensive destination-specific pre-computations (reverse shortest-path trees,
Eq. 5 budget tables) are built once per destination rather than once per
router instance.  Cache keys and persisted heuristic bundles are keyed by the
graphs' *content fingerprints* rather than object identity, which makes them
portable: any engine over structurally identical graphs — another engine
instance, another process rebuilt from the same
:class:`~repro.routing.backends.EngineSpec` — shares them without rebuilding.

Batches enter through :meth:`RoutingEngine.route_many`, whose execution
strategy is pluggable via :mod:`repro.routing.backends` (serial,
thread fan-out, or a multiprocess worker pool); results are identical to
routing each query alone, in input order.  :meth:`RoutingEngine.stats`
reports serving introspection (cache hits/misses, heuristic build seconds,
per-method query counts, engine provenance).

:meth:`RoutingEngine.save_artifacts` / :meth:`RoutingEngine.from_artifacts`
are the deployment cycle: persist the graphs and every cached heuristic into
a content-addressed :class:`~repro.persistence.store.ArtifactStore` once,
then cold-boot serving engines — and multiprocess workers — from it with
fingerprint verification and zero rebuilds.
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import Counter, OrderedDict
from collections.abc import Callable, Sequence
from dataclasses import asdict, dataclass, field
from pathlib import Path as FilePath

from repro.core.errors import ConfigurationError, DataError
from repro.core.pace_graph import PaceGraph
from repro.heuristics.base import Heuristic
from repro.heuristics.binary import (
    EdgeOnlyBinaryHeuristic,
    EuclideanBinaryHeuristic,
    PaceBinaryHeuristic,
)
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.persistence.heuristics import (
    binary_heuristic_from_dict,
    binary_heuristic_to_dict,
    budget_heuristic_from_dict,
    budget_heuristic_to_dict,
    load_heuristic_bundle,
    save_heuristic_bundle,
)
from repro.routing.backends import ExecutionBackend, SerialBackend, ThreadBackend
from repro.routing.methods import METHOD_NAMES, MethodSpec
from repro.routing.residency import (
    CacheCounters,
    PrewarmPolicy,
    heuristic_nbytes,
    normalise_prewarm,
)
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.routing.tpath_routing import HeuristicPaceRouter, HeuristicRouterConfig
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = [
    "RouterSettings",
    "METHOD_NAMES",
    "MethodSpec",
    "create_router",
    "HeuristicCache",
    "CacheCounters",
    "EngineStats",
    "RoutingEngine",
]


@dataclass(frozen=True)
class RouterSettings:
    """Cross-cutting knobs shared by every router built by :func:`create_router`.

    ``heuristic_sweeps`` caps the Eq. 5 Bellman passes per budget table;
    ``None`` runs the sweep to its fixpoint (converged tables — the default
    for artifact builds, where the cost is paid once offline and the tables
    are served forever).

    ``expansion`` selects how the guided routers walk a popped candidate's
    successors: ``"batched"`` (the default) through the ndarray kernels of
    :mod:`repro.routing.accel`, ``"scalar"`` through the per-element
    reference loop.  Both modes return identical results.
    """

    max_support: int = 64
    max_explored: int = 100000
    max_budget: float = 5000.0
    heuristic_sweeps: int | None = 2
    expansion: str = "batched"

    def naive(self) -> NaiveRouterConfig:
        return NaiveRouterConfig(max_support=self.max_support, max_explored=self.max_explored)

    def heuristic(self) -> HeuristicRouterConfig:
        return HeuristicRouterConfig(
            max_support=self.max_support,
            max_explored=self.max_explored,
            expansion=self.expansion,
        )

    def vpath(self, *, use_dominance: bool = True) -> VPathRouterConfig:
        return VPathRouterConfig(
            max_support=self.max_support,
            max_explored=self.max_explored,
            use_dominance=use_dominance,
            expansion=self.expansion,
        )

    def budget_config(self, delta: float) -> BudgetHeuristicConfig:
        return BudgetHeuristicConfig(
            delta=delta,
            max_budget=max(self.max_budget, delta),
            sweeps=self.heuristic_sweeps,
        )


class HeuristicCache:
    """Two-tier destination-keyed cache of heuristic instances.

    Heuristics are destination-specific pre-computations (Section 3).  Without
    sharing, every router instance pays for its own copies: ``T-B-P`` and
    ``V-B-P`` each build the same reverse shortest-path tree, and every
    ``BudgetSpecificHeuristic`` Bellman table is rebuilt per router.  The cache
    is keyed by ``(heuristic kind, graph content fingerprint, destination)``
    so different heuristic families and graphs never collide — and because
    the fingerprint depends only on graph *content*, keys are meaningful
    across engines and across processes, not just for one object graph.  It
    is thread-safe so a worker pool can share it.

    The *resident* tier is this in-memory map, optionally bounded to
    ``cache_bytes`` (:func:`~repro.routing.residency.heuristic_nbytes` per
    entry) with least-recently-used eviction; ``None`` keeps everything
    resident, which is the classic unbounded behaviour.  The optional
    *fault* tier is a loader (:meth:`set_loader`) consulted before the
    builder on every miss — the engine points it at the artifact store's
    per-entry documents, so a miss for a persisted destination streams the
    table from disk instead of re-running the offline computation.  An
    entry larger than the whole budget is served un-cached (build or fault
    again next time) with a loud :class:`RuntimeWarning` rather than
    silently evicting everything else.
    """

    def __init__(self, *, cache_bytes: int | None = None) -> None:
        if cache_bytes is not None and cache_bytes <= 0:
            raise ConfigurationError(
                f"cache_bytes must be a positive byte budget or None (unbounded), "
                f"got {cache_bytes!r}"
            )
        self._cache_bytes = cache_bytes
        self._entries: OrderedDict[tuple, Heuristic] = OrderedDict()
        self._sizes: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self._building: dict[tuple, threading.Lock] = {}
        self._loader: Callable[[tuple], Heuristic | None] | None = None
        self._oversize_warned: set[tuple] = set()
        self.hits = 0
        self.misses = 0
        self.faults = 0
        self.evictions = 0
        self.resident_bytes = 0
        self.build_seconds = 0.0

    @property
    def cache_bytes(self) -> int | None:
        """The resident-tier byte budget (``None`` = unbounded)."""
        return self._cache_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> CacheCounters:
        """One consistent :class:`~repro.routing.residency.CacheCounters` snapshot.

        Readers that want more than one counter must take them together:
        reading ``hits`` and ``misses`` in two unlocked steps can observe a
        miss that has been counted while its entry is still being inserted.
        """
        with self._lock:
            return CacheCounters(
                entries=len(self._entries),
                hits=self.hits,
                misses=self.misses,
                faults=self.faults,
                evictions=self.evictions,
                resident_bytes=self.resident_bytes,
                build_seconds=self.build_seconds,
            )

    def set_loader(self, loader: Callable[[tuple], Heuristic | None] | None) -> None:
        """Attach the fault tier: ``loader(key)`` returns a persisted heuristic
        or ``None`` when the key has no (admissible) persisted entry.  A
        loader signalling corruption must raise
        :class:`~repro.core.errors.DataError`; the cache propagates it and
        stays consistent (nothing is inserted, later lookups retry).
        """
        with self._lock:
            self._loader = loader

    def insert(self, key: tuple, heuristic: Heuristic) -> None:
        """Seed the cache with an already built heuristic (e.g. loaded from disk).

        Counts as neither a hit nor a miss; subsequent :meth:`get_or_build`
        calls for ``key`` are hits and never invoke their builder.  Budget
        accounting and eviction apply exactly as for built entries.
        """
        with self._lock:
            warn_size = self._admit_locked(key, heuristic)
        self._warn_oversize(key, warn_size)

    def _admit_locked(self, key: tuple, heuristic: Heuristic) -> int | None:
        """Store ``heuristic`` under ``key`` and evict down to budget.

        Caller holds ``self._lock``.  Returns the entry's size when it
        exceeds the whole budget and was *not* stored (the caller warns
        outside the lock; ``None`` otherwise).
        """
        size = heuristic_nbytes(heuristic)
        budget = self._cache_bytes
        if budget is not None and size > budget:
            if key in self._oversize_warned:
                return None
            self._oversize_warned.add(key)
            return size
        previous = self._sizes.pop(key, None)
        if previous is not None:
            self.resident_bytes -= previous
        self._entries[key] = heuristic
        self._entries.move_to_end(key)
        self._sizes[key] = size
        self.resident_bytes += size
        while budget is not None and self.resident_bytes > budget:
            evicted_key, _ = self._entries.popitem(last=False)
            self.resident_bytes -= self._sizes.pop(evicted_key)
            self.evictions += 1
        return None

    def _warn_oversize(self, key: tuple, size: int | None) -> None:
        if size is None:
            return
        warnings.warn(
            f"heuristic {key!r} is {size} bytes but the cache budget is only "
            f"{self._cache_bytes} bytes; it will be rebuilt or re-faulted on "
            "every lookup — raise cache_bytes to keep it resident",
            RuntimeWarning,
            stacklevel=3,
        )

    def snapshot(self) -> dict[tuple, Heuristic]:
        """A point-in-time copy of the resident entries (used for persistence)."""
        with self._lock:
            return dict(self._entries)

    def get_or_build(self, key: tuple, builder: Callable[[], Heuristic]) -> Heuristic:
        """Return the cached heuristic for ``key``, faulting or building on a miss.

        Misses consult the fault-tier loader first (when attached) and fall
        back to ``builder``.  Concurrent misses on the *same* key serialise
        on a per-key lock so the expensive build or disk fault runs exactly
        once (same-destination queries are adjacent in a batch and land on
        different workers simultaneously); different keys proceed in
        parallel.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            key_lock = self._building.setdefault(key, threading.Lock())
            loader = self._loader
        with key_lock:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return cached
            faulted = loader(key) if loader is not None else None
            if faulted is not None:
                with self._lock:
                    warn_size = self._admit_locked(key, faulted)
                    self.faults += 1
                    self._building.pop(key, None)
                self._warn_oversize(key, warn_size)
                return faulted
            started = time.perf_counter()
            built = builder()
            elapsed = time.perf_counter() - started
            with self._lock:
                warn_size = self._admit_locked(key, built)
                self.misses += 1
                self.build_seconds += elapsed
                self._building.pop(key, None)
            self._warn_oversize(key, warn_size)
        return built


def _binary_factory(kind: str, settings: RouterSettings, cache: HeuristicCache | None = None):
    def factory(graph, destination: int) -> Heuristic:
        pace_graph = graph.pace_graph if isinstance(graph, UpdatedPaceGraph) else graph

        def build() -> Heuristic:
            if kind == "EU":
                return EuclideanBinaryHeuristic(pace_graph.network, destination)
            if kind == "E":
                return EdgeOnlyBinaryHeuristic(pace_graph, destination)
            return PaceBinaryHeuristic(pace_graph, destination)

        if cache is None:
            return build()
        return cache.get_or_build(
            ("binary", kind, pace_graph.content_fingerprint(), destination), build
        )

    return factory


def _budget_factory(delta: float, settings: RouterSettings, cache: HeuristicCache | None = None):
    def factory(graph, destination: int) -> Heuristic:
        def build() -> Heuristic:
            return BudgetSpecificHeuristic(graph, destination, settings.budget_config(delta))

        if cache is None:
            return build()
        # Budget tables depend on the graph the router searches (plain vs V-path
        # closure), so the graph's content fingerprint is part of the key.
        return cache.get_or_build(
            ("budget", delta, graph.content_fingerprint(), destination), build
        )

    return factory


def create_router(
    method: str | MethodSpec,
    pace_graph: PaceGraph,
    updated_graph: UpdatedPaceGraph | None = None,
    *,
    settings: RouterSettings | None = None,
    heuristic_cache: HeuristicCache | None = None,
):
    """Build the router implementing ``method`` (a name or a :class:`MethodSpec`).

    ``updated_graph`` (the V-path closure of ``pace_graph``) is required for
    the V-graph methods and ignored otherwise.  ``heuristic_cache`` optionally
    shares destination-keyed heuristics across routers; entries are keyed by
    graph content fingerprint, so a cache may even be shared across engines
    over equal graphs (a :class:`RoutingEngine` manages one automatically).
    """
    spec = MethodSpec.coerce(method)
    settings = settings or RouterSettings()
    name = spec.canonical_name
    # A byte-budgeted shared cache must stay the *only* owner of heuristic
    # references — router-level pinning would keep evicted tables alive (and
    # invisible to the resident-bytes accounting), so bounded caches disable
    # it and every lookup goes through the cache's LRU.
    pin = heuristic_cache is None or heuristic_cache.cache_bytes is None
    if spec.graph == "pace":
        if spec.heuristic == "none":
            return NaivePaceRouter(pace_graph, settings.naive())
        if spec.heuristic == "budget":
            factory = _budget_factory(spec.delta, settings, heuristic_cache)
        else:
            factory = _binary_factory(spec.binary_kind, settings, heuristic_cache)
        return HeuristicPaceRouter(
            pace_graph, factory, method_name=name, config=settings.heuristic(), pin_heuristics=pin
        )

    if updated_graph is None:
        raise ConfigurationError(f"method {name!r} needs the updated PACE graph (V-paths)")
    if spec.heuristic == "none":
        return VPathRouter(updated_graph, None, method_name=name, config=settings.vpath())
    if spec.heuristic == "budget":
        factory = _budget_factory(spec.delta, settings, heuristic_cache)
    else:
        factory = _binary_factory(spec.binary_kind, settings, heuristic_cache)
    return VPathRouter(
        updated_graph, factory, method_name=name, config=settings.vpath(), pin_heuristics=pin
    )


@dataclass(frozen=True)
class EngineStats:
    """A point-in-time snapshot of a :class:`RoutingEngine`'s serving counters.

    ``cache_hits`` / ``cache_misses`` count heuristic-cache lookups (a miss
    triggers a build whose wall-clock cost accumulates into
    ``heuristic_build_seconds``; entries loaded from a bundle count as
    neither).  ``queries_by_method`` counts queries accepted through
    :meth:`RoutingEngine.route` / :meth:`RoutingEngine.route_many` per
    canonical method name.  The residency trio — ``cache_faults`` (misses
    answered by streaming the persisted table from the artifact store),
    ``cache_evictions`` (entries dropped to stay under the byte budget) and
    ``cache_resident_bytes`` (the resident tier's current footprint) — is
    zero for classic unbounded eager engines.
    """

    cache_entries: int
    cache_hits: int
    cache_misses: int
    heuristic_build_seconds: float
    queries_total: int
    queries_by_method: dict[str, int]
    cache_faults: int = 0
    cache_evictions: int = 0
    cache_resident_bytes: int = 0
    #: Where this engine's graphs came from: ``{"source": "artifacts", "path":
    #: ..., ...}`` for engines booted via :meth:`RoutingEngine.from_artifacts`,
    #: ``{"source": "recipe", ...}`` for re-mined engines, ``{"source":
    #: "memory"}`` for engines wrapped around in-process graphs.
    provenance: dict = field(default_factory=lambda: {"source": "memory"})
    #: Degradation counters, populated by :meth:`RoutingService.stats`: batches
    #: whose execution backend failed as a unit (``backend_failures``) and the
    #: requests re-routed through the in-process serial fallback
    #: (``fallback_queries``).  Zero for engines queried directly.
    backend_failures: int = 0
    fallback_queries: int = 0


class RoutingEngine:
    """Batch query serving facade over one PACE graph and its V-path closure.

    The engine owns the graphs, builds routers for the paper's named methods
    lazily, and shares a single :class:`HeuristicCache` across all of them.
    Queries are answered one at a time with :meth:`route` or in batches with
    :meth:`route_many`; batches are evaluated grouped by destination (so each
    destination's heuristic is built exactly once and then reused while hot)
    and can fan out over a thread pool or, via
    :class:`~repro.routing.backends.ProcessBackend`, over worker processes.

    Batch evaluation is purely an execution strategy: per-query results —
    best path, arrival probability, cost distribution — are identical to
    calling :meth:`route` once per query, because every router's search is
    deterministic given its (deterministically built, cached) heuristic.

    The cache is also the unit of persistence: :meth:`save_heuristics` writes
    every cached heuristic (binary ``getMin`` maps and Eq. 5 budget tables)
    to one bundle file, and :meth:`prewarm` with a path loads such a bundle
    back.  Bundle entries are tagged with the content fingerprint of the
    graph they were built over, so a bundle saved by one engine loads into
    any process whose graphs have equal content — the multiprocess serving
    path — with zero rebuilds.

    The engine is also the unit of *artifact* persistence:
    :meth:`save_artifacts` writes the index (graphs) plus every cached
    heuristic into a content-addressed
    :class:`~repro.persistence.store.ArtifactStore`, and
    :meth:`from_artifacts` boots an engine from such a store — fingerprints
    verified, zero T-path mining, zero heuristic rebuilds.

    ``spec`` optionally records the :data:`~repro.routing.backends.EngineSpec`
    this engine was built from (a :class:`~repro.routing.backends.DatasetRecipe`
    or an :class:`~repro.routing.backends.ArtifactRef`); a
    :class:`ProcessBackend` uses it to initialise its workers.  ``provenance``
    is the free-form origin record surfaced by :meth:`stats`.
    """

    def __init__(
        self,
        pace_graph: PaceGraph,
        updated_graph: UpdatedPaceGraph | None = None,
        *,
        settings: RouterSettings | None = None,
        spec=None,
        provenance: dict | None = None,
        cache_bytes: int | None = None,
    ):
        self._pace_graph = pace_graph
        self._updated_graph = updated_graph
        self._settings = settings or RouterSettings()
        self._cache = HeuristicCache(cache_bytes=cache_bytes)
        self._heuristic_source = None
        self._routers: dict[str, object] = {}
        self._router_lock = threading.Lock()
        self._query_counts: Counter[str] = Counter()
        self._stats_lock = threading.Lock()
        self.spec = spec
        self.provenance = dict(provenance) if provenance is not None else {"source": "memory"}

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    @property
    def pace_graph(self) -> PaceGraph:
        return self._pace_graph

    @property
    def updated_graph(self) -> UpdatedPaceGraph | None:
        return self._updated_graph

    @property
    def settings(self) -> RouterSettings:
        return self._settings

    @property
    def heuristic_cache(self) -> HeuristicCache:
        """The destination-keyed heuristic cache shared by every router."""
        return self._cache

    def stats(self) -> EngineStats:
        """A snapshot of the serving counters (cache behaviour, query mix)."""
        with self._stats_lock:
            counts = dict(self._query_counts)
        counters = self._cache.counters()
        return EngineStats(
            cache_entries=counters.entries,
            cache_hits=counters.hits,
            cache_misses=counters.misses,
            heuristic_build_seconds=counters.build_seconds,
            queries_total=sum(counts.values()),
            queries_by_method=counts,
            cache_faults=counters.faults,
            cache_evictions=counters.evictions,
            cache_resident_bytes=counters.resident_bytes,
            provenance=dict(self.provenance),
        )

    def _count_queries(self, method_name: str, count: int) -> None:
        with self._stats_lock:
            self._query_counts[method_name] += count

    # -------------------------------------------------------------- #
    # Routers
    # -------------------------------------------------------------- #
    def router(self, method: str | MethodSpec):
        """The (lazily built, cached) router implementing ``method``."""
        spec = MethodSpec.coerce(method)
        name = spec.canonical_name
        with self._router_lock:
            if name not in self._routers:
                self._routers[name] = create_router(
                    spec,
                    self._pace_graph,
                    self._updated_graph,
                    settings=self._settings,
                    heuristic_cache=self._cache,
                )
            return self._routers[name]

    def build_accelerators(self) -> int:
        """Build (or re-attach to) the frontier accelerators of this engine's graphs.

        The batched expansion mode lazily builds one
        :class:`~repro.routing.accel.FrontierAccelerator` per graph on the
        first query; serving processes call this at boot instead so the
        one-time flattening cost is paid before traffic arrives.  A no-op
        when ``settings.expansion`` is ``"scalar"``.  Returns the number of
        accelerators made hot.
        """
        if self._settings.expansion != "batched":
            return 0
        from repro.routing.accel import accelerator_for

        accelerator_for(self._pace_graph)
        count = 1
        if self._updated_graph is not None:
            accelerator_for(self._updated_graph)
            count += 1
        return count

    def prewarm(
        self,
        source: str | FilePath | MethodSpec,
        destinations: Sequence[int] | None = None,
    ) -> int:
        """Warm the heuristic cache ahead of query traffic.

        Two forms are supported:

        * ``prewarm(method, destinations)`` — *build* the heuristics of
          ``method`` (a name or :class:`MethodSpec`) for the given
          destinations (the offline investment),
        * ``prewarm(path)`` — *load* every heuristic persisted by
          :meth:`save_heuristics` (see :meth:`load_heuristics`), so a serving
          process starts answering from the pre-computed tables instead of
          rebuilding them.

        Methods without destination-specific heuristics (``T-None``,
        ``V-None``) have nothing to prewarm and are rejected with a
        :class:`~repro.core.errors.ConfigurationError` rather than silently
        warming nothing.  Returns the number of heuristics made hot.
        """
        if destinations is None:
            if isinstance(source, MethodSpec):
                raise ConfigurationError(
                    f"prewarm({source.canonical_name!r}) needs a destinations sequence; "
                    "prewarm without destinations loads a heuristic bundle file"
                )
            if not FilePath(source).exists():
                raise DataError(
                    f"heuristic bundle file not found: {source} (prewarm without "
                    "destinations loads a heuristic bundle from disk; to build "
                    "heuristics for a method, pass a destinations sequence)"
                )
            return self.load_heuristics(source)
        spec = MethodSpec.coerce(source)
        if not spec.supports_prewarm:
            raise ConfigurationError(
                f"method {spec.canonical_name!r} uses no destination-specific heuristic, "
                "so there is nothing to prewarm; prewarming applies to the guided methods "
                "T-B-EU, T-B-E, T-B-P, V-B-P, T-BS-<delta> and V-BS-<delta>"
            )
        router = self.router(spec)
        for destination in destinations:
            router.heuristic_for(destination)
        return len(destinations)

    # -------------------------------------------------------------- #
    # Heuristic persistence (prewarm a serving process from disk)
    # -------------------------------------------------------------- #
    def _graph_flavour(self, fingerprint: str) -> str | None:
        if fingerprint == self._pace_graph.content_fingerprint():
            return "pace"
        if (
            self._updated_graph is not None
            and fingerprint == self._updated_graph.content_fingerprint()
        ):
            return "updated"
        return None

    def _graph_fingerprint(self, flavour: str) -> str:
        if flavour == "updated":
            assert self._updated_graph is not None
            return self._updated_graph.content_fingerprint()
        return self._pace_graph.content_fingerprint()

    def _graph_signature(self, flavour: str) -> list:
        """A cheap structural fingerprint of the graph heuristics were built over.

        The content fingerprint is the authoritative identity; the signature
        (vertex/edge/T-path/V-path counts) is kept alongside it because it
        yields a *readable* mismatch message and keeps bundles written before
        fingerprinting loadable.
        """
        network = self._pace_graph.network
        signature = [network.num_vertices, network.num_edges, self._pace_graph.num_tpaths]
        if flavour == "updated" and self._updated_graph is not None:
            signature.append(self._updated_graph.num_vpaths)
        return signature

    def save_heuristics(self, path: str | FilePath) -> int:
        """Persist every cached heuristic to ``path`` as one bundle document.

        Binary heuristics store their ``getMin`` maps, budget-specific
        heuristics their Eq. 5 tables plus ``getMin`` maps; each entry is
        tagged with the cache metadata (variant, δ, which graph it was built
        over, the graph's content fingerprint and structural signature)
        needed to re-key and validate it on load — in this process or any
        other.  Returns the number of entries written.
        """
        entries = self._heuristic_entries()
        save_heuristic_bundle(entries, path)
        return len(entries)

    def _heuristic_entries(self) -> list[dict]:
        """The cache snapshot as tagged, portable heuristic-bundle entries."""
        entries: list[dict] = []
        for key, heuristic in sorted(self._cache.snapshot().items(), key=lambda kv: str(kv[0])):
            kind = key[0]
            if kind == "binary":
                _, variant, fingerprint, _destination = key
                if self._graph_flavour(fingerprint) is None:
                    continue
                entries.append(
                    {
                        "kind": "binary",
                        "variant": variant,
                        "destination": heuristic.destination,
                        "graph_fingerprint": self._graph_fingerprint("pace"),
                        "graph_signature": self._graph_signature("pace"),
                        "heuristic": binary_heuristic_to_dict(heuristic),
                    }
                )
            elif kind == "budget":
                _, delta, fingerprint, _destination = key
                flavour = self._graph_flavour(fingerprint)
                if flavour is None:
                    continue
                entries.append(
                    {
                        "kind": "budget",
                        "delta": delta,
                        "graph": flavour,
                        "destination": heuristic.destination,
                        "graph_fingerprint": self._graph_fingerprint(flavour),
                        "graph_signature": self._graph_signature(flavour),
                        "heuristic": budget_heuristic_to_dict(heuristic),
                    }
                )
        return entries

    def load_heuristics(self, path: str | FilePath) -> int:
        """Load a :meth:`save_heuristics` bundle into the heuristic cache.

        Entries are validated before they are served: a bundle written over a
        graph with different *content* (other dataset, regime, τ, edge
        weights, or V-path closure) is rejected with a
        :class:`~repro.core.errors.DataError` — via the content fingerprint
        when the bundle carries one, falling back to the structural signature
        for bundles written before fingerprinting.  Budget tables that cannot
        provide admissible bounds here are skipped — tables that do not cover
        this engine's ``settings.max_budget`` (residual budgets would cap at
        their grid) and tables built with ``grid_rounding="floor"`` (cells
        may under-estimate).  Skipped heuristics are simply rebuilt on
        demand.  Returns the number of entries loaded.
        """
        return self._load_heuristic_entries(load_heuristic_bundle(path))

    def _load_heuristic_entries(self, entries: Sequence[dict]) -> int:
        """Validate tagged bundle entries and seed the cache with them."""
        loaded = 0
        for entry in entries:
            validated = self._validated_heuristic(entry)
            if validated is None:
                continue
            key, heuristic = validated
            self._cache.insert(key, heuristic)
            loaded += 1
        return loaded

    def _validated_heuristic(self, entry: dict) -> tuple[tuple, Heuristic] | None:
        """Validate one tagged bundle entry against this engine's graphs.

        Returns the ``(cache key, heuristic)`` pair ready for the cache, or
        ``None`` when the entry cannot serve this engine admissibly and
        should simply be (re)built on demand.  Raises
        :class:`~repro.core.errors.DataError` when the entry is malformed or
        was built over *different* graph content — both the eager boot and
        the lazy fault tier apply exactly this validation, so a lazily
        faulted table can never answer a query an eagerly loaded one would
        have refused.
        """
        try:
            kind = entry["kind"]
            if kind == "binary":
                flavour = "pace"
                heuristic: Heuristic = binary_heuristic_from_dict(entry["heuristic"])
                key = (
                    "binary",
                    entry["variant"],
                    self._graph_fingerprint("pace"),
                    heuristic.destination,
                )
            elif kind == "budget":
                flavour = entry.get("graph", "pace")
                if flavour == "updated" and self._updated_graph is None:
                    # Tables built over the V-path closure are useless
                    # without one; skip rather than mis-key them.
                    return None
                heuristic = budget_heuristic_from_dict(entry["heuristic"])
                # Exact comparison intended: both sides round-tripped
                # through the same JSON document, so any difference means
                # the entry's tag and its table genuinely disagree.
                if float(entry["delta"]) != heuristic.table.delta:  # repro: ignore[float-equality]
                    raise DataError(
                        f"bundle entry delta {entry['delta']!r} does not match "
                        f"its table delta {heuristic.table.delta!r}"
                    )
                if heuristic.table.max_budget < self._settings.max_budget - 1e-9:
                    # The table cannot answer this engine's largest budgets.
                    return None
                if heuristic.grid_rounding != "ceil":
                    # Floor-built cells may under-estimate (inadmissible);
                    # routing needs upper bounds, so rebuild instead.
                    return None
                key = (
                    "budget",
                    float(entry["delta"]),
                    self._graph_fingerprint(flavour),
                    heuristic.destination,
                )
            else:
                raise DataError(f"unknown heuristic bundle entry kind {kind!r}")
            fingerprint = entry.get("graph_fingerprint")
            if fingerprint is not None:
                if fingerprint != self._graph_fingerprint(flavour):
                    raise DataError(
                        "heuristic bundle was built over a different graph "
                        f"(content fingerprint {fingerprint} != "
                        f"{self._graph_fingerprint(flavour)}, structural signature "
                        f"{entry.get('graph_signature')} vs "
                        f"{self._graph_signature(flavour)}); "
                        "rebuild or load the matching index"
                    )
            else:
                signature = entry.get("graph_signature")
                if signature is not None and list(signature) != self._graph_signature(flavour):
                    raise DataError(
                        f"heuristic bundle was built over a different graph "
                        f"(signature {signature} != {self._graph_signature(flavour)}); "
                        "rebuild or load the matching index"
                    )
        except (KeyError, TypeError) as exc:
            raise DataError(f"malformed heuristic bundle entry: {exc}") from exc
        return key, heuristic

    # -------------------------------------------------------------- #
    # Tiered residency (fault heuristics from the artifact store)
    # -------------------------------------------------------------- #
    def _attach_heuristic_store(self, handle) -> None:
        """Back the cache's fault tier with an artifact store handle.

        After this, a cache miss for a destination whose table is persisted
        streams the per-entry document from disk (one mmap'd read, validated
        like an eager load) instead of re-running the offline computation.
        """
        self._heuristic_source = handle
        self._cache.set_loader(self._fault_heuristic)

    def _store_entry_key(self, key: tuple) -> str | None:
        """Map a cache key onto the store's heuristic entry key (or ``None``).

        The store keys entries by :func:`~repro.persistence.heuristics.
        heuristic_entry_key` (kind, variant/δ, graph *flavour*, destination);
        cache keys carry the graph content fingerprint instead, so the
        flavour is recovered through this engine's own graphs.  Keys over
        foreign fingerprints have no persisted counterpart here.
        """
        kind = key[0]
        if kind == "binary":
            _, variant, fingerprint, destination = key
            if self._graph_flavour(fingerprint) is None:
                return None
            return f"binary-{variant}-{destination}"
        if kind == "budget":
            _, delta, fingerprint, destination = key
            flavour = self._graph_flavour(fingerprint)
            if flavour is None:
                return None
            return f"budget-{float(delta)!r}-{flavour}-{destination}"
        return None

    def _fault_heuristic(self, key: tuple) -> Heuristic | None:
        """The cache's fault tier: load ``key``'s persisted entry on demand.

        Returns ``None`` (→ build) when the store holds no admissible entry
        for the key; raises :class:`~repro.core.errors.DataError` on
        corruption, leaving the cache untouched.
        """
        handle = self._heuristic_source
        if handle is None:
            return None
        name = self._store_entry_key(key)
        if name is None or name not in handle:
            return None
        validated = self._validated_heuristic(handle.load_entry(name))
        if validated is None:
            return None
        loaded_key, heuristic = validated
        if loaded_key != key:
            # The persisted entry decodes into a different cache slot than
            # the one that asked for it; building is always safe.
            return None
        return heuristic

    # -------------------------------------------------------------- #
    # Artifact persistence (mine once, boot engines from disk forever)
    # -------------------------------------------------------------- #
    def save_artifacts(
        self, store, *, provenance: dict | None = None, format_version: int | None = None
    ):
        """Persist this engine's offline artifacts to an artifact store.

        Writes the routable index (road network, edge weights, T-paths,
        V-path closure) plus every cached heuristic into ``store`` (an
        :class:`~repro.persistence.store.ArtifactStore` or a directory path),
        together with a manifest recording the graph content fingerprints,
        the :class:`RouterSettings`, the originating
        :class:`~repro.routing.backends.DatasetRecipe` (when this engine was
        built from one) and build provenance.  ``provenance`` adds caller
        metadata (e.g. mining wall-clock) to the manifest.
        ``format_version`` selects the artifact format (1 = JSON documents,
        2 = columnar binary with individually addressable heuristic tables);
        ``None`` keeps an existing store's format and writes fresh stores at
        :data:`~repro.persistence.store.DEFAULT_STORE_FORMAT`.  Returns the
        written :class:`~repro.persistence.store.ArtifactManifest`.
        """
        from repro.persistence.store import ArtifactStore
        from repro.routing.backends import DatasetRecipe

        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        graph = self._updated_graph if self._updated_graph is not None else self._pace_graph
        fingerprints = {
            "pace": self._pace_graph.content_fingerprint(),
            "updated": (
                None
                if self._updated_graph is None
                else self._updated_graph.content_fingerprint()
            ),
        }
        entries = self._heuristic_entries()
        build_provenance = {
            "builder": "RoutingEngine.save_artifacts",
            "heuristic_entries": len(entries),
            "heuristic_build_seconds": round(self._cache.build_seconds, 6),
            "heuristic_sweeps": self._settings.heuristic_sweeps,
            # A shallow origin record; "build" (the previous manifest's
            # provenance) is dropped so repeated re-saves don't nest forever.
            "engine": {k: v for k, v in self.provenance.items() if k != "build"},
        }
        # An artifact-booted engine re-saving (``prewarm --artifacts``) keeps
        # the previous manifest's build record — the index is unchanged, so
        # its provenance (mine_seconds in particular, which the benchmark
        # cache contract reads) must survive; freshly computed keys win.
        for key, value in self.provenance.get("build", {}).items():
            if key != "created_at":
                build_provenance.setdefault(key, value)
        build_provenance.update(provenance or {})
        if isinstance(self.spec, DatasetRecipe):
            recipe = asdict(self.spec)
        else:
            # An artifact-booted engine re-saving (e.g. ``prewarm --artifacts``)
            # keeps the original mining recipe the store recorded.
            recipe = self.provenance.get("recipe")
        return store.save(
            graph=graph,
            fingerprints=fingerprints,
            settings=asdict(self._settings),
            heuristic_entries=entries or None,
            recipe=recipe,
            provenance=build_provenance,
            format_version=format_version,
        )

    @classmethod
    def from_artifacts(
        cls,
        store,
        *,
        settings: RouterSettings | None = None,
        prewarm: str | Sequence[str] = "all",
        cache_bytes: int | None = None,
    ) -> "RoutingEngine":
        """Boot an engine from a persisted artifact store — never re-mine.

        Loads the index (checksum- and fingerprint-verified) and wires the
        heuristic cache's fault tier to the store, so every persisted table
        can be streamed in on demand.  ``prewarm`` controls the *resident*
        tier at boot: ``"all"`` (the default) eagerly loads every persisted
        heuristic — the classic cold boot, first queries see zero cache
        misses; ``"none"`` starts empty — boot cost scales with the index
        alone and each table faults in on first touch; an explicit sequence
        of store entry keys (``["budget-60.0-pace-35", ...]``) warms exactly
        those.  ``cache_bytes`` bounds the resident tier (LRU eviction,
        see :class:`HeuristicCache`); ``None`` keeps everything resident.

        ``settings`` defaults to the :class:`RouterSettings` the artifacts
        were built for (recorded in the manifest) — overriding them is
        allowed, but heuristics that cannot serve the override admissibly
        (e.g. budget tables below a larger ``max_budget``) are skipped and
        rebuilt on demand.  The returned engine's ``spec`` is an
        :class:`~repro.routing.backends.ArtifactRef` pinned to the loaded
        fingerprints *and* this boot policy, so a
        :class:`~repro.routing.backends.ProcessBackend` boots every worker
        from the same store with the same residency discipline.
        """
        from repro.persistence.store import ArtifactStore
        from repro.routing.backends import ArtifactRef

        policy = normalise_prewarm(prewarm)
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore.open(store)
        manifest = store.manifest
        if settings is None:
            try:
                settings = RouterSettings(**manifest.settings)
            except TypeError as exc:
                raise DataError(
                    f"artifact manifest settings {sorted(manifest.settings)} do not match "
                    f"this version's RouterSettings: {exc}"
                ) from exc
        pace, updated = store.load_index()
        spec = ArtifactRef(
            path=str(store.root),
            pace_fingerprint=manifest.fingerprints["pace"],
            updated_fingerprint=manifest.fingerprints.get("updated"),
            prewarm=policy,
            cache_bytes=cache_bytes,
        )
        engine = cls(
            pace,
            updated,
            settings=settings,
            spec=spec,
            cache_bytes=cache_bytes,
            provenance={
                "source": "artifacts",
                "path": str(store.root),
                "fingerprints": dict(manifest.fingerprints),
                "recipe": None if manifest.recipe is None else dict(manifest.recipe),
                "build": dict(manifest.provenance),
            },
        )
        handle = store.open_heuristics()
        if len(handle):
            engine._attach_heuristic_store(handle)
            engine._prewarm_from_store(handle, policy)
        return engine

    def _prewarm_from_store(self, handle, policy: PrewarmPolicy) -> int:
        """Load the ``policy``-selected persisted entries into the resident tier.

        Entries are faulted one at a time (each per-entry document is decoded
        and dropped before the next), so even an eager ``"all"`` boot never
        holds the whole store's raw bytes alongside the decoded tables.
        """
        if policy == "none":
            return 0
        if policy == "all":
            keys = handle.keys()
        else:
            missing = [key for key in policy if key not in handle]
            if missing:
                raise DataError(
                    f"prewarm keys {missing!r} are not persisted in the artifact "
                    f"store (available: {sorted(handle.keys())!r})"
                )
            keys = policy
        loaded = 0
        for key in keys:
            loaded += self._load_heuristic_entries([handle.load_entry(key)])
        return loaded

    # -------------------------------------------------------------- #
    # Routing
    # -------------------------------------------------------------- #
    def route(self, query: RoutingQuery, *, method: str | MethodSpec) -> RoutingResult:
        """Evaluate one arriving-on-time query with ``method``."""
        spec = MethodSpec.coerce(method)
        self._count_queries(spec.canonical_name, 1)
        return self.router(spec).route(query)

    def route_many(
        self,
        queries: Sequence[RoutingQuery],
        *,
        method: str | MethodSpec,
        workers: int | None = None,
        backend: ExecutionBackend | None = None,
    ) -> list[RoutingResult]:
        """Evaluate a batch of queries, returning results in input order.

        Queries are processed grouped by destination so that each
        destination-specific heuristic is built once and stays hot for all its
        queries.  The execution strategy is the ``backend``
        (:mod:`repro.routing.backends`): serial by default, a thread pool
        with ``workers`` > 1 (kept for backwards compatibility with the
        pre-backend API), or e.g. ``ProcessBackend(workers=4)`` to scale the
        GIL-bound search loops across processes.  Every backend returns
        results identical to (and ordered like) the serial evaluation.
        """
        spec = MethodSpec.coerce(method)
        queries = list(queries)
        if not queries:
            return []
        if backend is not None and workers is not None:
            raise ConfigurationError(
                "pass either workers= (legacy thread fan-out) or backend=, not both"
            )
        if backend is None:
            backend = ThreadBackend(workers) if workers is not None and workers > 1 else SerialBackend()
        self._count_queries(spec.canonical_name, len(queries))
        return backend.run(self, spec, queries)
