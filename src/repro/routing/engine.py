"""Router factory: build any of the paper's named routing methods.

The experiments compare a fixed palette of methods (Section 5.1):

========  =======================================================================
Name      Meaning
========  =======================================================================
T-None    Algorithm 1 — plain PACE routing, no heuristic, no V-paths
T-B-EU    Binary heuristic from Euclidean distance / maximum speed
T-B-E     Binary heuristic from an edges-only reverse shortest-path tree
T-B-P     Binary heuristic from the Algorithm 2 tree over edges and T-paths
T-BS-δ    Budget-specific heuristic table with granularity δ (e.g. ``T-BS-60``)
V-None    Algorithm 5 graph (with V-paths) but no heuristic
V-B-P     V-path routing guided by the T-B-P binary heuristic
V-BS-δ    V-path routing guided by the budget-specific heuristic
========  =======================================================================

:func:`create_router` maps those names onto configured router instances so the
evaluation harness, the examples and user code all build methods the same way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.pace_graph import PaceGraph
from repro.heuristics.base import Heuristic
from repro.heuristics.binary import (
    EdgeOnlyBinaryHeuristic,
    EuclideanBinaryHeuristic,
    PaceBinaryHeuristic,
)
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.routing.tpath_routing import HeuristicPaceRouter, HeuristicRouterConfig
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = ["RouterSettings", "METHOD_NAMES", "create_router"]

#: The method names used throughout the evaluation (δ = 60 written explicitly).
METHOD_NAMES = (
    "T-None",
    "T-B-EU",
    "T-B-E",
    "T-B-P",
    "T-BS-60",
    "V-None",
    "V-B-P",
    "V-BS-60",
)

_BUDGET_PATTERN = re.compile(r"^(T|V)-BS-(\d+)$")


@dataclass(frozen=True)
class RouterSettings:
    """Cross-cutting knobs shared by every router built by :func:`create_router`."""

    max_support: int = 64
    max_explored: int = 100000
    max_budget: float = 5000.0
    heuristic_sweeps: int = 2

    def naive(self) -> NaiveRouterConfig:
        return NaiveRouterConfig(max_support=self.max_support, max_explored=self.max_explored)

    def heuristic(self) -> HeuristicRouterConfig:
        return HeuristicRouterConfig(max_support=self.max_support, max_explored=self.max_explored)

    def vpath(self, *, use_dominance: bool = True) -> VPathRouterConfig:
        return VPathRouterConfig(
            max_support=self.max_support,
            max_explored=self.max_explored,
            use_dominance=use_dominance,
        )

    def budget_config(self, delta: float) -> BudgetHeuristicConfig:
        return BudgetHeuristicConfig(
            delta=delta,
            max_budget=max(self.max_budget, delta),
            sweeps=self.heuristic_sweeps,
        )


def _binary_factory(kind: str, settings: RouterSettings):
    def factory(graph, destination: int) -> Heuristic:
        pace_graph = graph.pace_graph if isinstance(graph, UpdatedPaceGraph) else graph
        if kind == "EU":
            return EuclideanBinaryHeuristic(pace_graph.network, destination)
        if kind == "E":
            return EdgeOnlyBinaryHeuristic(pace_graph, destination)
        return PaceBinaryHeuristic(pace_graph, destination)

    return factory


def _budget_factory(delta: float, settings: RouterSettings):
    def factory(graph, destination: int) -> Heuristic:
        return BudgetSpecificHeuristic(graph, destination, settings.budget_config(delta))

    return factory


def create_router(
    method: str,
    pace_graph: PaceGraph,
    updated_graph: UpdatedPaceGraph | None = None,
    *,
    settings: RouterSettings | None = None,
):
    """Build the router implementing ``method``.

    ``updated_graph`` (the V-path closure of ``pace_graph``) is required for
    the ``V-*`` methods and ignored otherwise.
    """
    settings = settings or RouterSettings()
    if method == "T-None":
        return NaivePaceRouter(pace_graph, settings.naive())

    if method in ("T-B-EU", "T-B-E", "T-B-P"):
        kind = method.rsplit("-", 1)[-1]
        return HeuristicPaceRouter(
            pace_graph,
            _binary_factory(kind, settings),
            method_name=method,
            config=settings.heuristic(),
        )

    budget_match = _BUDGET_PATTERN.match(method)
    if budget_match and budget_match.group(1) == "T":
        delta = float(budget_match.group(2))
        return HeuristicPaceRouter(
            pace_graph,
            _budget_factory(delta, settings),
            method_name=method,
            config=settings.heuristic(),
        )

    if method.startswith("V-"):
        if updated_graph is None:
            raise ConfigurationError(f"method {method!r} needs the updated PACE graph (V-paths)")
        if method == "V-None":
            return VPathRouter(
                updated_graph, None, method_name=method, config=settings.vpath()
            )
        if method == "V-B-P":
            return VPathRouter(
                updated_graph,
                _binary_factory("P", settings),
                method_name=method,
                config=settings.vpath(),
            )
        if budget_match and budget_match.group(1) == "V":
            delta = float(budget_match.group(2))
            return VPathRouter(
                updated_graph,
                _budget_factory(delta, settings),
                method_name=method,
                config=settings.vpath(),
            )

    raise ConfigurationError(f"unknown routing method {method!r}")
