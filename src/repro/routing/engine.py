"""Router factory and batch routing engine.

The experiments compare a fixed palette of methods (Section 5.1):

========  =======================================================================
Name      Meaning
========  =======================================================================
T-None    Algorithm 1 — plain PACE routing, no heuristic, no V-paths
T-B-EU    Binary heuristic from Euclidean distance / maximum speed
T-B-E     Binary heuristic from an edges-only reverse shortest-path tree
T-B-P     Binary heuristic from the Algorithm 2 tree over edges and T-paths
T-BS-δ    Budget-specific heuristic table with granularity δ (e.g. ``T-BS-60``)
V-None    Algorithm 5 graph (with V-paths) but no heuristic
V-B-P     V-path routing guided by the T-B-P binary heuristic
V-BS-δ    V-path routing guided by the budget-specific heuristic
========  =======================================================================

:func:`create_router` maps those names onto configured router instances so the
evaluation harness, the examples and user code all build methods the same way.

:class:`RoutingEngine` is the serving facade on top of the factory: it owns
one PACE graph (plus its V-path closure), builds routers lazily, and shares a
single destination-keyed :class:`HeuristicCache` across *all* of them, so the
expensive destination-specific pre-computations (reverse shortest-path trees,
Eq. 5 budget tables) are built once per destination rather than once per
router instance.  Its :meth:`RoutingEngine.route_many` entry point evaluates a
batch of queries — grouped by destination for cache locality, optionally
fanned out over a thread pool — which is how the evaluation harness and the
examples now drive query traffic.
"""

from __future__ import annotations

import re
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path as FilePath

from repro.core.errors import ConfigurationError, DataError
from repro.core.pace_graph import PaceGraph
from repro.heuristics.base import Heuristic
from repro.heuristics.binary import (
    EdgeOnlyBinaryHeuristic,
    EuclideanBinaryHeuristic,
    PaceBinaryHeuristic,
)
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.persistence.heuristics import (
    binary_heuristic_from_dict,
    binary_heuristic_to_dict,
    budget_heuristic_from_dict,
    budget_heuristic_to_dict,
    load_heuristic_bundle,
    save_heuristic_bundle,
)
from repro.routing.naive import NaivePaceRouter, NaiveRouterConfig
from repro.routing.queries import RoutingQuery, RoutingResult
from repro.routing.tpath_routing import HeuristicPaceRouter, HeuristicRouterConfig
from repro.routing.vpath_routing import VPathRouter, VPathRouterConfig
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = [
    "RouterSettings",
    "METHOD_NAMES",
    "create_router",
    "HeuristicCache",
    "RoutingEngine",
]

#: The method names used throughout the evaluation (δ = 60 written explicitly).
METHOD_NAMES = (
    "T-None",
    "T-B-EU",
    "T-B-E",
    "T-B-P",
    "T-BS-60",
    "V-None",
    "V-B-P",
    "V-BS-60",
)

_BUDGET_PATTERN = re.compile(r"^(T|V)-BS-(\d+)$")

#: Fixed (non-δ-parameterised) method names the factory accepts.
_FIXED_METHODS = ("T-None", "T-B-EU", "T-B-E", "T-B-P", "V-None", "V-B-P")


def _check_method_known(method: str) -> None:
    """Reject unknown method names with a message that lists the palette."""
    if method in _FIXED_METHODS or _BUDGET_PATTERN.match(method):
        return
    raise ConfigurationError(
        f"unknown routing method {method!r}; known methods are "
        f"{', '.join(METHOD_NAMES)} (T-BS-<delta> / V-BS-<delta> accept any integer delta). "
        "Note that V-path routing only exists as V-None, V-B-P and V-BS-<delta>: "
        "the Euclidean (B-EU) and edges-only (B-E) binary heuristics have no V-variant "
        "because V-path search is only evaluated with the PACE-aware heuristics in the paper."
    )


@dataclass(frozen=True)
class RouterSettings:
    """Cross-cutting knobs shared by every router built by :func:`create_router`."""

    max_support: int = 64
    max_explored: int = 100000
    max_budget: float = 5000.0
    heuristic_sweeps: int = 2

    def naive(self) -> NaiveRouterConfig:
        return NaiveRouterConfig(max_support=self.max_support, max_explored=self.max_explored)

    def heuristic(self) -> HeuristicRouterConfig:
        return HeuristicRouterConfig(max_support=self.max_support, max_explored=self.max_explored)

    def vpath(self, *, use_dominance: bool = True) -> VPathRouterConfig:
        return VPathRouterConfig(
            max_support=self.max_support,
            max_explored=self.max_explored,
            use_dominance=use_dominance,
        )

    def budget_config(self, delta: float) -> BudgetHeuristicConfig:
        return BudgetHeuristicConfig(
            delta=delta,
            max_budget=max(self.max_budget, delta),
            sweeps=self.heuristic_sweeps,
        )


class HeuristicCache:
    """Destination-keyed cache of heuristic instances, shared across routers.

    Heuristics are destination-specific pre-computations (Section 3).  Without
    sharing, every router instance pays for its own copies: ``T-B-P`` and
    ``V-B-P`` each build the same reverse shortest-path tree, and every
    ``BudgetSpecificHeuristic`` Bellman table is rebuilt per router.  The cache
    is keyed by ``(heuristic kind, graph identity, destination)`` so different
    heuristic families and graphs never collide, and it is thread-safe so a
    :class:`RoutingEngine` worker pool can share it.
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, Heuristic] = {}
        self._lock = threading.Lock()
        self._building: dict[tuple, threading.Lock] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, key: tuple, heuristic: Heuristic) -> None:
        """Seed the cache with an already built heuristic (e.g. loaded from disk).

        Counts as neither a hit nor a miss; subsequent :meth:`get_or_build`
        calls for ``key`` are hits and never invoke their builder.
        """
        with self._lock:
            self._entries[key] = heuristic

    def snapshot(self) -> dict[tuple, Heuristic]:
        """A point-in-time copy of the cached entries (used for persistence)."""
        with self._lock:
            return dict(self._entries)

    def get_or_build(self, key: tuple, builder: Callable[[], Heuristic]) -> Heuristic:
        """Return the cached heuristic for ``key``, building it (once) on a miss.

        Concurrent misses on the *same* key serialise on a per-key lock so the
        expensive build runs exactly once (same-destination queries are
        adjacent in a batch and land on different workers simultaneously);
        builds for different keys proceed in parallel.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                return cached
            key_lock = self._building.setdefault(key, threading.Lock())
        with key_lock:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self.hits += 1
                    return cached
            built = builder()
            with self._lock:
                self._entries[key] = built
                self.misses += 1
                self._building.pop(key, None)
        return built


def _binary_factory(kind: str, settings: RouterSettings, cache: HeuristicCache | None = None):
    def factory(graph, destination: int) -> Heuristic:
        pace_graph = graph.pace_graph if isinstance(graph, UpdatedPaceGraph) else graph

        def build() -> Heuristic:
            if kind == "EU":
                return EuclideanBinaryHeuristic(pace_graph.network, destination)
            if kind == "E":
                return EdgeOnlyBinaryHeuristic(pace_graph, destination)
            return PaceBinaryHeuristic(pace_graph, destination)

        if cache is None:
            return build()
        return cache.get_or_build(("binary", kind, id(pace_graph), destination), build)

    return factory


def _budget_factory(delta: float, settings: RouterSettings, cache: HeuristicCache | None = None):
    def factory(graph, destination: int) -> Heuristic:
        def build() -> Heuristic:
            return BudgetSpecificHeuristic(graph, destination, settings.budget_config(delta))

        if cache is None:
            return build()
        # Budget tables depend on the graph the router searches (plain vs V-path
        # closure), so the graph identity is part of the key.
        return cache.get_or_build(("budget", delta, id(graph), destination), build)

    return factory


def create_router(
    method: str,
    pace_graph: PaceGraph,
    updated_graph: UpdatedPaceGraph | None = None,
    *,
    settings: RouterSettings | None = None,
    heuristic_cache: HeuristicCache | None = None,
):
    """Build the router implementing ``method``.

    ``updated_graph`` (the V-path closure of ``pace_graph``) is required for
    the ``V-*`` methods and ignored otherwise.  ``heuristic_cache`` optionally
    shares destination-keyed heuristics across routers; use one cache per
    ``(pace_graph, updated_graph)`` pair (a :class:`RoutingEngine` does this
    automatically).
    """
    _check_method_known(method)
    settings = settings or RouterSettings()
    if method == "T-None":
        return NaivePaceRouter(pace_graph, settings.naive())

    if method in ("T-B-EU", "T-B-E", "T-B-P"):
        kind = method.rsplit("-", 1)[-1]
        return HeuristicPaceRouter(
            pace_graph,
            _binary_factory(kind, settings, heuristic_cache),
            method_name=method,
            config=settings.heuristic(),
        )

    budget_match = _BUDGET_PATTERN.match(method)
    if budget_match and budget_match.group(1) == "T":
        delta = float(budget_match.group(2))
        return HeuristicPaceRouter(
            pace_graph,
            _budget_factory(delta, settings, heuristic_cache),
            method_name=method,
            config=settings.heuristic(),
        )

    if updated_graph is None:
        raise ConfigurationError(f"method {method!r} needs the updated PACE graph (V-paths)")
    if method == "V-None":
        return VPathRouter(updated_graph, None, method_name=method, config=settings.vpath())
    if method == "V-B-P":
        return VPathRouter(
            updated_graph,
            _binary_factory("P", settings, heuristic_cache),
            method_name=method,
            config=settings.vpath(),
        )
    delta = float(budget_match.group(2))
    return VPathRouter(
        updated_graph,
        _budget_factory(delta, settings, heuristic_cache),
        method_name=method,
        config=settings.vpath(),
    )


class RoutingEngine:
    """Batch query serving facade over one PACE graph and its V-path closure.

    The engine owns the graphs, builds routers for the paper's named methods
    lazily, and shares a single :class:`HeuristicCache` across all of them.
    Queries are answered one at a time with :meth:`route` or in batches with
    :meth:`route_many`; batches are evaluated grouped by destination (so each
    destination's heuristic is built exactly once and then reused while hot)
    and can optionally fan out over a thread pool.

    Batch evaluation is purely an execution strategy: per-query results —
    best path, arrival probability, cost distribution — are identical to
    calling :meth:`route` once per query, because every router's search is
    deterministic given its (deterministically built, cached) heuristic.

    The cache is also the unit of persistence: :meth:`save_heuristics` writes
    every cached heuristic (binary ``getMin`` maps and Eq. 5 budget tables)
    to one bundle file, and :meth:`prewarm` with a path loads such a bundle
    back, so a serving process answers its hot destinations from disk instead
    of re-running the offline pre-computation.
    """

    def __init__(
        self,
        pace_graph: PaceGraph,
        updated_graph: UpdatedPaceGraph | None = None,
        *,
        settings: RouterSettings | None = None,
    ):
        self._pace_graph = pace_graph
        self._updated_graph = updated_graph
        self._settings = settings or RouterSettings()
        self._cache = HeuristicCache()
        self._routers: dict[str, object] = {}
        self._router_lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    @property
    def pace_graph(self) -> PaceGraph:
        return self._pace_graph

    @property
    def updated_graph(self) -> UpdatedPaceGraph | None:
        return self._updated_graph

    @property
    def settings(self) -> RouterSettings:
        return self._settings

    @property
    def heuristic_cache(self) -> HeuristicCache:
        """The destination-keyed heuristic cache shared by every router."""
        return self._cache

    # -------------------------------------------------------------- #
    # Routers
    # -------------------------------------------------------------- #
    def router(self, method: str):
        """The (lazily built, cached) router implementing ``method``."""
        with self._router_lock:
            if method not in self._routers:
                self._routers[method] = create_router(
                    method,
                    self._pace_graph,
                    self._updated_graph,
                    settings=self._settings,
                    heuristic_cache=self._cache,
                )
            return self._routers[method]

    def prewarm(
        self, source: str | FilePath, destinations: Sequence[int] | None = None
    ) -> int:
        """Warm the heuristic cache ahead of query traffic.

        Two forms are supported:

        * ``prewarm(method, destinations)`` — *build* the heuristics of
          ``method`` for the given destinations (the offline investment).
        * ``prewarm(path)`` — *load* every heuristic persisted by
          :meth:`save_heuristics` (see :meth:`load_heuristics`), so a serving
          process starts answering from the pre-computed tables instead of
          rebuilding them.

        Returns the number of heuristics made hot.
        """
        if destinations is None:
            if not FilePath(source).exists():
                raise DataError(
                    f"heuristic bundle file not found: {source} (prewarm without "
                    "destinations loads a heuristic bundle from disk; to build "
                    "heuristics for a method, pass a destinations sequence)"
                )
            return self.load_heuristics(source)
        router = self.router(source)
        heuristic_for = getattr(router, "heuristic_for", None)
        if heuristic_for is None:
            return 0
        for destination in destinations:
            heuristic_for(destination)
        return len(destinations)

    # -------------------------------------------------------------- #
    # Heuristic persistence (prewarm a serving process from disk)
    # -------------------------------------------------------------- #
    def _graph_flavour(self, graph_id: int) -> str | None:
        if graph_id == id(self._pace_graph):
            return "pace"
        if self._updated_graph is not None and graph_id == id(self._updated_graph):
            return "updated"
        return None

    def _graph_signature(self, flavour: str) -> list:
        """A cheap structural fingerprint of the graph heuristics were built over.

        Heuristic tables are only meaningful for the exact graph they were
        computed on; the fingerprint (vertex/edge/T-path/V-path counts)
        rejects bundles from a different dataset, regime, τ or V-path closure
        at load time instead of serving silently wrong bounds.
        """
        network = self._pace_graph.network
        signature = [network.num_vertices, network.num_edges, self._pace_graph.num_tpaths]
        if flavour == "updated" and self._updated_graph is not None:
            signature.append(self._updated_graph.num_vpaths)
        return signature

    def save_heuristics(self, path: str | FilePath) -> int:
        """Persist every cached heuristic to ``path`` as one bundle document.

        Binary heuristics store their ``getMin`` maps, budget-specific
        heuristics their Eq. 5 tables plus ``getMin`` maps; each entry is
        tagged with the cache metadata (variant, δ, which graph it was built
        over, a structural graph fingerprint) needed to re-key and validate
        it on load.  Returns the number of entries written.
        """
        entries: list[dict] = []
        for key, heuristic in sorted(self._cache.snapshot().items(), key=lambda kv: str(kv[0])):
            kind = key[0]
            if kind == "binary":
                _, variant, graph_id, _destination = key
                if graph_id != id(self._pace_graph):
                    continue
                entries.append(
                    {
                        "kind": "binary",
                        "variant": variant,
                        "destination": heuristic.destination,
                        "graph_signature": self._graph_signature("pace"),
                        "heuristic": binary_heuristic_to_dict(heuristic),
                    }
                )
            elif kind == "budget":
                _, delta, graph_id, _destination = key
                flavour = self._graph_flavour(graph_id)
                if flavour is None:
                    continue
                entries.append(
                    {
                        "kind": "budget",
                        "delta": delta,
                        "graph": flavour,
                        "destination": heuristic.destination,
                        "graph_signature": self._graph_signature(flavour),
                        "heuristic": budget_heuristic_to_dict(heuristic),
                    }
                )
        save_heuristic_bundle(entries, path)
        return len(entries)

    def load_heuristics(self, path: str | FilePath) -> int:
        """Load a :meth:`save_heuristics` bundle into the heuristic cache.

        Entries are validated before they are served: a bundle written over a
        structurally different graph (other dataset, regime, τ, or V-path
        closure) is rejected with a :class:`~repro.core.errors.DataError`,
        and budget tables that cannot provide admissible bounds here are
        skipped — tables that do not cover this engine's
        ``settings.max_budget`` (residual budgets would cap at their grid)
        and tables built with ``grid_rounding="floor"`` (cells may
        under-estimate).  Skipped heuristics are simply rebuilt on demand.
        Returns the number of entries loaded.
        """
        loaded = 0
        for entry in load_heuristic_bundle(path):
            try:
                kind = entry["kind"]
                if kind == "binary":
                    flavour = "pace"
                    heuristic = binary_heuristic_from_dict(entry["heuristic"])
                    key = ("binary", entry["variant"], id(self._pace_graph), heuristic.destination)
                elif kind == "budget":
                    flavour = entry.get("graph", "pace")
                    if flavour == "pace":
                        graph = self._pace_graph
                    else:
                        graph = self._updated_graph
                        if graph is None:
                            # Tables built over the V-path closure are useless
                            # without one; skip rather than mis-key them.
                            continue
                    heuristic = budget_heuristic_from_dict(entry["heuristic"])
                    if float(entry["delta"]) != heuristic.table.delta:
                        raise DataError(
                            f"bundle entry delta {entry['delta']!r} does not match "
                            f"its table delta {heuristic.table.delta!r}"
                        )
                    if heuristic.table.max_budget < self._settings.max_budget - 1e-9:
                        # The table cannot answer this engine's largest budgets.
                        continue
                    if heuristic.grid_rounding != "ceil":
                        # Floor-built cells may under-estimate (inadmissible);
                        # routing needs upper bounds, so rebuild instead.
                        continue
                    key = ("budget", float(entry["delta"]), id(graph), heuristic.destination)
                else:
                    raise DataError(f"unknown heuristic bundle entry kind {kind!r}")
                signature = entry.get("graph_signature")
                if signature is not None and list(signature) != self._graph_signature(flavour):
                    raise DataError(
                        f"heuristic bundle was built over a different graph "
                        f"(signature {signature} != {self._graph_signature(flavour)}); "
                        "rebuild or load the matching index"
                    )
            except (KeyError, TypeError) as exc:
                raise DataError(f"malformed heuristic bundle entry: {exc}") from exc
            self._cache.insert(key, heuristic)
            loaded += 1
        return loaded

    # -------------------------------------------------------------- #
    # Routing
    # -------------------------------------------------------------- #
    def route(self, query: RoutingQuery, *, method: str) -> RoutingResult:
        """Evaluate one arriving-on-time query with ``method``."""
        return self.router(method).route(query)

    def route_many(
        self,
        queries: Sequence[RoutingQuery],
        *,
        method: str,
        workers: int | None = None,
    ) -> list[RoutingResult]:
        """Evaluate a batch of queries, returning results in input order.

        Queries are processed grouped by destination so that each
        destination-specific heuristic is built once and stays hot for all its
        queries.  With ``workers`` > 1 the batch fans out over a thread pool;
        the shared heuristic cache is thread-safe, and results are identical
        to (and ordered like) the serial evaluation.
        """
        queries = list(queries)
        if not queries:
            return []
        router = self.router(method)
        order = sorted(range(len(queries)), key=lambda i: (queries[i].destination, i))
        results: list[RoutingResult | None] = [None] * len(queries)
        if workers is not None and workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for index, result in zip(
                    order, pool.map(lambda i: router.route(queries[i]), order)
                ):
                    results[index] = result
        else:
            for index in order:
                results[index] = router.route(queries[index])
        return results  # type: ignore[return-value]
