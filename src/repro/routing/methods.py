"""Structured routing-method specifications.

The experiments compare a fixed palette of methods (Section 5.1), named with
the paper's shorthand:

========  =======================================================================
Name      Meaning
========  =======================================================================
T-None    Algorithm 1 — plain PACE routing, no heuristic, no V-paths
T-B-EU    Binary heuristic from Euclidean distance / maximum speed
T-B-E     Binary heuristic from an edges-only reverse shortest-path tree
T-B-P     Binary heuristic from the Algorithm 2 tree over edges and T-paths
T-BS-δ    Budget-specific heuristic table with granularity δ (e.g. ``T-BS-60``)
V-None    Algorithm 5 graph (with V-paths) but no heuristic
V-B-P     V-path routing guided by the T-B-P binary heuristic
V-BS-δ    V-path routing guided by the budget-specific heuristic
========  =======================================================================

Historically those names were the API: every entry point took the string and
re-parsed it with a regex.  :class:`MethodSpec` is the structured form — which
graph the search runs on, which heuristic family guides it, and the budget
granularity δ for the table-based family — with a loss-free
:meth:`MethodSpec.parse` / :attr:`MethodSpec.canonical_name` round-trip.  The
factory, the :class:`~repro.routing.engine.RoutingEngine`, the experiment
drivers and the CLI all accept either form via :meth:`MethodSpec.coerce`.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass

from repro.core.errors import ConfigurationError

__all__ = ["MethodSpec", "METHOD_NAMES", "GRAPHS", "HEURISTICS"]

#: The method names used throughout the evaluation (δ = 60 written explicitly).
METHOD_NAMES = (
    "T-None",
    "T-B-EU",
    "T-B-E",
    "T-B-P",
    "T-BS-60",
    "V-None",
    "V-B-P",
    "V-BS-60",
)

#: Which graph the search explores: the plain PACE graph or its V-path closure.
GRAPHS = ("pace", "vpath")

#: Heuristic families guiding the search (Section 3).
HEURISTICS = ("none", "binary_eu", "binary_e", "binary_p", "budget")

#: Heuristic families that exist on the V-path closure (the paper only
#: evaluates V-path search with the PACE-aware heuristics).
_VPATH_HEURISTICS = ("none", "binary_p", "budget")

_GRAPH_PREFIX = {"pace": "T", "vpath": "V"}
_PREFIX_GRAPH = {"T": "pace", "V": "vpath"}
_BINARY_SUFFIX = {"binary_eu": "B-EU", "binary_e": "B-E", "binary_p": "B-P"}
_SUFFIX_BINARY = {suffix: kind for kind, suffix in _BINARY_SUFFIX.items()}

_NAME_PATTERN = re.compile(r"^(T|V)-(None|B-EU|B-E|B-P)$")
#: δ is whatever ``float`` parses (so every ``canonical_name`` round-trips,
#: including ``repr``-formatted and scientific-notation deltas).
_BUDGET_NAME_PATTERN = re.compile(r"^(T|V)-BS-(\S+)$")


def _unknown_method_error(method: object) -> ConfigurationError:
    """The palette-listing error shared by :meth:`MethodSpec.parse` and validation."""
    return ConfigurationError(
        f"unknown routing method {method!r}; known methods are "
        f"{', '.join(METHOD_NAMES)} (T-BS-<delta> / V-BS-<delta> accept any positive delta). "
        "Note that V-path routing only exists as V-None, V-B-P and V-BS-<delta>: "
        "the Euclidean (B-EU) and edges-only (B-E) binary heuristics have no V-variant "
        "because V-path search is only evaluated with the PACE-aware heuristics in the paper."
    )


@dataclass(frozen=True)
class MethodSpec:
    """A routing method in structured form: graph × heuristic × δ.

    ``graph`` selects what the search explores (``"pace"`` for the T-*
    methods, ``"vpath"`` for the V-* methods over the closure ``G_p+``),
    ``heuristic`` the guiding family, and ``delta`` the budget granularity —
    required for (and only meaningful to) the ``"budget"`` family.

    Instances are validated on construction, so a held ``MethodSpec`` is
    always a routable method; in particular the V-graph only admits the
    PACE-aware heuristics (``none`` / ``binary_p`` / ``budget``).
    """

    graph: str
    heuristic: str = "none"
    delta: float | None = None

    def __post_init__(self) -> None:
        if self.graph not in GRAPHS:
            raise ConfigurationError(
                f"unknown method graph {self.graph!r}; choose from {GRAPHS}"
            )
        if self.heuristic not in HEURISTICS:
            raise ConfigurationError(
                f"unknown method heuristic {self.heuristic!r}; choose from {HEURISTICS}"
            )
        if self.graph == "vpath" and self.heuristic not in _VPATH_HEURISTICS:
            raise _unknown_method_error(
                f"V-{_BINARY_SUFFIX.get(self.heuristic, self.heuristic)}"
            )
        if self.heuristic == "budget":
            if self.delta is None:
                raise ConfigurationError(
                    "the budget-specific heuristic needs a grid granularity delta"
                )
            object.__setattr__(self, "delta", float(self.delta))
            if self.delta <= 0 or not math.isfinite(self.delta):
                raise ConfigurationError(f"delta must be positive and finite, got {self.delta!r}")
        elif self.delta is not None:
            raise ConfigurationError(
                f"delta only applies to the budget-specific heuristic, not {self.heuristic!r}"
            )

    # ------------------------------------------------------------------ #
    # Name round-trip
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, name: str) -> "MethodSpec":
        """Parse a paper-style method name (``"V-BS-60"``) into a spec.

        Raises :class:`~repro.core.errors.ConfigurationError` listing the
        method palette for anything outside the grammar, including the
        non-existent V-variants (``V-B-EU`` / ``V-B-E``).
        """
        if isinstance(name, MethodSpec):
            return name
        if not isinstance(name, str):
            raise _unknown_method_error(name)
        budget_match = _BUDGET_NAME_PATTERN.match(name)
        if budget_match is not None:
            try:
                delta = float(budget_match.group(2))
            except ValueError:
                raise _unknown_method_error(name) from None
            if not math.isfinite(delta) or delta <= 0:
                raise _unknown_method_error(name)
            return cls(graph=_PREFIX_GRAPH[budget_match.group(1)], heuristic="budget", delta=delta)
        match = _NAME_PATTERN.match(name)
        if match is None:
            raise _unknown_method_error(name)
        graph = _PREFIX_GRAPH[match.group(1)]
        tail = match.group(2)
        if tail == "None":
            return cls(graph=graph)
        # Construction validates the combination (V-B-EU / V-B-E raise the
        # same palette-listing error from __post_init__).
        return cls(graph=graph, heuristic=_SUFFIX_BINARY[tail])

    @classmethod
    def coerce(cls, method: "MethodSpec | str") -> "MethodSpec":
        """Accept either form of the public API: a spec, or a method name."""
        if isinstance(method, MethodSpec):
            return method
        return cls.parse(method)

    @property
    def canonical_name(self) -> str:
        """The paper-style name; ``MethodSpec.parse`` round-trips it exactly.

        Integer deltas print the paper's way (``T-BS-60``); non-integers use
        ``repr`` so the name is loss-free for *any* delta (the name keys the
        engine's router cache and crosses process boundaries, so a lossy
        format would silently alias different deltas).
        """
        prefix = _GRAPH_PREFIX[self.graph]
        if self.heuristic == "none":
            return f"{prefix}-None"
        if self.heuristic == "budget":
            delta = str(int(self.delta)) if self.delta.is_integer() else repr(self.delta)
            return f"{prefix}-BS-{delta}"
        return f"{prefix}-{_BINARY_SUFFIX[self.heuristic]}"

    # ------------------------------------------------------------------ #
    # Capability queries
    # ------------------------------------------------------------------ #
    @property
    def requires_vpaths(self) -> bool:
        """True when routing this method needs the V-path closure ``G_p+``."""
        return self.graph == "vpath"

    @property
    def uses_heuristic(self) -> bool:
        """True when an informative (destination-specific) heuristic guides the search."""
        return self.heuristic != "none"

    @property
    def supports_prewarm(self) -> bool:
        """True when the method has destination-specific state worth pre-computing."""
        return self.uses_heuristic

    @property
    def binary_kind(self) -> str | None:
        """The binary-heuristic variant tag (``"EU"`` / ``"E"`` / ``"P"``), if any."""
        if self.heuristic.startswith("binary_"):
            return self.heuristic.removeprefix("binary_").upper()
        return None

    def __str__(self) -> str:
        return self.canonical_name
