"""Residency accounting for the tiered heuristic cache.

Country-scale stores hold far more pre-computed heuristic tables than one
serving process wants resident at once (Section 6 scales destinations with
the road network).  The :class:`~repro.routing.engine.HeuristicCache` is
therefore two-tier: a byte-budgeted resident tier in memory, backed by the
artifact store's on-demand fault tier
(:meth:`~repro.persistence.store.ArtifactStore.open_heuristics`).  This
module holds the small, strictly typed vocabulary shared by both tiers:

* :class:`CacheCounters` — the one consistent snapshot of the cache's
  behaviour counters (entries/hits/misses plus the residency trio
  faults/evictions/resident bytes),
* :func:`heuristic_nbytes` — the deterministic in-memory size estimate used
  for *all* budget accounting, so built and faulted entries are charged the
  same way,
* :func:`normalise_prewarm` — validation of the ``prewarm`` policy accepted
  by :meth:`~repro.routing.engine.RoutingEngine.from_artifacts`.
"""

from __future__ import annotations

import sys
from collections.abc import Sequence
from typing import NamedTuple

from repro.core.errors import ConfigurationError
from repro.heuristics.base import Heuristic

__all__ = ["CacheCounters", "PrewarmPolicy", "heuristic_nbytes", "normalise_prewarm"]

#: A validated prewarm policy: ``"all"`` (eagerly load every persisted
#: heuristic — the classic boot), ``"none"`` (resident tier starts empty,
#: entries fault in on first touch), or an explicit tuple of store entry
#: keys (e.g. ``("budget-60.0-pace-35",)``) to make hot at boot.
PrewarmPolicy = str | tuple[str, ...]


class CacheCounters(NamedTuple):
    """One consistent snapshot of a :class:`HeuristicCache`'s counters.

    ``entries``/``resident_bytes`` describe the resident tier right now;
    ``hits``/``misses``/``faults``/``evictions`` are cumulative.  A *fault*
    is a miss answered by loading the persisted table from the artifact
    store instead of rebuilding it; ``misses`` counts only the lookups that
    paid for a fresh build (whose wall-clock accumulates into
    ``build_seconds``).
    """

    entries: int
    hits: int
    misses: int
    faults: int
    evictions: int
    resident_bytes: int
    build_seconds: float


def heuristic_nbytes(heuristic: Heuristic) -> int:
    """The in-memory footprint charged against the cache's byte budget.

    Uses the heuristic's own ``storage_bytes`` accounting (the paper's
    Tables 8–10 storage metric) so built and faulted entries are charged
    identically — budget semantics must not depend on *how* an entry became
    resident.  Objects without the accounting (test doubles, third-party
    heuristics) are charged their shallow size.  Estimates are clamped to at
    least one byte so a degenerate accounting can never admit unbounded
    entries for free.
    """
    accounting = getattr(heuristic, "storage_bytes", None)
    if accounting is None:
        return max(1, sys.getsizeof(heuristic))
    return max(1, int(accounting()))


def normalise_prewarm(prewarm: str | Sequence[str]) -> PrewarmPolicy:
    """Validate a ``prewarm`` argument into ``"all"``, ``"none"`` or a key tuple."""
    if isinstance(prewarm, str):
        if prewarm in ("all", "none"):
            return prewarm
        raise ConfigurationError(
            f"prewarm must be 'all', 'none' or a sequence of heuristic entry keys, "
            f"got {prewarm!r}"
        )
    try:
        keys = tuple(prewarm)
    except TypeError as exc:
        raise ConfigurationError(
            f"prewarm must be 'all', 'none' or a sequence of heuristic entry keys, "
            f"got {prewarm!r}"
        ) from exc
    for key in keys:
        if not isinstance(key, str) or not key:
            raise ConfigurationError(
                f"prewarm keys must be non-empty strings (store heuristic entry "
                f"keys such as 'budget-60.0-pace-35'), got {key!r}"
            )
    return keys
