"""Heuristic-guided stochastic routing on the plain PACE graph (T-B-*, T-BS-δ).

These routers keep the PACE cost semantics (candidate distributions are
evaluated through the coarsest T-path assembly), but order and prune the
exploration with an admissible heuristic:

* candidates are prioritised by ``maxProb`` (Eq. 3) — the probability of the
  candidate itself combined with the heuristic's bound on the remaining
  travel,
* candidates whose minimum cost plus ``getMin`` of their end vertex exceeds
  the budget are discarded, and
* the search stops as soon as the most promising candidate already ends at
  the destination (admissibility makes this safe).

Stochastic-dominance pruning is *not* used here: without V-paths it is
unsound in PACE (Section 2.3).
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.pace_graph import PaceGraph
from repro.heuristics.base import Heuristic, max_prob
from repro.routing.queries import RoutingQuery, RoutingResult

__all__ = ["HeuristicRouterConfig", "HeuristicPaceRouter"]

HeuristicFactory = Callable[[PaceGraph, int], Heuristic]


@dataclass(frozen=True)
class HeuristicRouterConfig:
    """Limits and knobs of the heuristic-guided PACE router."""

    max_support: int = 64
    max_explored: int = 100000

    def validate(self) -> None:
        if self.max_support < 1:
            raise ConfigurationError("max_support must be positive")
        if self.max_explored < 1:
            raise ConfigurationError("max_explored must be positive")


class HeuristicPaceRouter:
    """Best-first PACE routing guided by an admissible heuristic."""

    def __init__(
        self,
        pace_graph: PaceGraph,
        heuristic_factory: HeuristicFactory,
        *,
        method_name: str,
        config: HeuristicRouterConfig | None = None,
    ):
        self._graph = pace_graph
        self._factory = heuristic_factory
        self.method_name = method_name
        self._config = config or HeuristicRouterConfig()
        self._config.validate()
        self._heuristics: dict[int, Heuristic] = {}

    # ------------------------------------------------------------------ #
    # Heuristic management
    # ------------------------------------------------------------------ #
    def heuristic_for(self, destination: int) -> Heuristic:
        """The (cached) destination-specific heuristic.

        Heuristics are destination-specific pre-computations (Section 3); the
        router keeps one per destination so repeated queries to the same
        destination — the scenario the paper's offline/online split targets —
        do not pay the construction cost again.
        """
        if destination not in self._heuristics:
            self._heuristics[destination] = self._factory(self._graph, destination)
        return self._heuristics[destination]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self, query: RoutingQuery) -> RoutingResult:
        """Evaluate one arriving-on-time query."""
        start = time.perf_counter()
        graph = self._graph
        budget = query.budget
        heuristic = self.heuristic_for(query.destination)
        explored = 0
        counter = 0
        heap: list[tuple[float, int, object]] = []

        for element in graph.outgoing_elements(query.source):
            path = element.path
            if not path.is_simple():
                continue
            distribution = element.distribution
            if distribution.min() + heuristic.min_cost(path.target) > budget:
                continue
            priority = max_prob(distribution, heuristic, path.target, budget)
            if priority <= 0:
                continue
            counter += 1
            heapq.heappush(heap, (-priority, counter, (path, distribution)))

        best_path = None
        best_prob = 0.0
        best_distribution = None
        while heap and explored < self._config.max_explored:
            negative_priority, _, (path, distribution) = heapq.heappop(heap)
            explored += 1
            if path.target == query.destination:
                # Admissible priorities: nothing left in the queue can beat this path.
                best_path = path
                best_prob = distribution.prob_at_most(budget)
                best_distribution = distribution
                break
            for element in graph.outgoing_elements(path.target):
                if any(path.visits(v) for v in element.path.vertices[1:]):
                    continue
                new_path = path.concat(element.path)
                lower_bound = graph.path_min_cost(new_path) + heuristic.min_cost(new_path.target)
                if lower_bound > budget:
                    continue
                new_distribution = graph.path_cost_distribution(
                    new_path, max_support=self._config.max_support
                )
                priority = max_prob(new_distribution, heuristic, new_path.target, budget)
                if priority <= 0:
                    continue
                counter += 1
                heapq.heappush(heap, (-priority, counter, (new_path, new_distribution)))

        return RoutingResult(
            query=query,
            method=self.method_name,
            path=best_path,
            probability=best_prob,
            distribution=best_distribution,
            explored=explored,
            runtime_seconds=time.perf_counter() - start,
        )
