"""Heuristic-guided stochastic routing on the plain PACE graph (T-B-*, T-BS-δ).

These routers keep the PACE cost semantics (candidate distributions are
evaluated through the coarsest T-path assembly), but order and prune the
exploration with an admissible heuristic:

* candidates are prioritised by ``maxProb`` (Eq. 3) — the probability of the
  candidate itself combined with the heuristic's bound on the remaining
  travel,
* candidates whose minimum cost plus ``getMin`` of their end vertex exceeds
  the budget are discarded, and
* the search stops as soon as the most promising candidate already ends at
  the destination (admissibility makes this safe).

Stochastic-dominance pruning is *not* used here: without V-paths it is
unsound in PACE (Section 2.3).

The router runs in one of two result-identical expansion modes (see
:mod:`repro.routing.accel`): ``"batched"`` (the default) evaluates each
popped candidate's whole successor slice through ndarray kernels and resumes
PACE chain evaluation from per-candidate chain trails, while ``"scalar"``
keeps the straightforward per-element loop — useful as a reference, and
occasionally faster on tiny graphs where slicing overhead dominates.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.distributions import Distribution
from repro.core.errors import ConfigurationError
from repro.core.pace_graph import PaceGraph
from repro.core.paths import Path
from repro.heuristics.base import Heuristic, max_prob
from repro.routing.accel import TCandidate, TExpansionKernel, accelerator_for
from repro.routing.queries import RoutingQuery, RoutingResult

__all__ = ["HeuristicRouterConfig", "HeuristicPaceRouter"]

HeuristicFactory = Callable[[PaceGraph, int], Heuristic]

_EXPANSION_MODES = ("batched", "scalar")


@dataclass(frozen=True)
class HeuristicRouterConfig:
    """Limits and knobs of the heuristic-guided PACE router."""

    max_support: int = 64
    max_explored: int = 100000
    expansion: str = "batched"

    def validate(self) -> None:
        if self.max_support < 1:
            raise ConfigurationError("max_support must be positive")
        if self.max_explored < 1:
            raise ConfigurationError("max_explored must be positive")
        if self.expansion not in _EXPANSION_MODES:
            raise ConfigurationError(
                f"expansion must be one of {_EXPANSION_MODES}, got {self.expansion!r}"
            )


class HeuristicPaceRouter:
    """Best-first PACE routing guided by an admissible heuristic."""

    def __init__(
        self,
        pace_graph: PaceGraph,
        heuristic_factory: HeuristicFactory,
        *,
        method_name: str,
        config: HeuristicRouterConfig | None = None,
        pin_heuristics: bool = True,
    ):
        self._graph = pace_graph
        self._factory = heuristic_factory
        self.method_name = method_name
        self._config = config or HeuristicRouterConfig()
        self._config.validate()
        self._pin_heuristics = pin_heuristics
        self._heuristics: dict[int, Heuristic] = {}

    # ------------------------------------------------------------------ #
    # Heuristic management
    # ------------------------------------------------------------------ #
    def heuristic_for(self, destination: int) -> Heuristic:
        """The (cached) destination-specific heuristic.

        Heuristics are destination-specific pre-computations (Section 3); the
        router keeps one per destination so repeated queries to the same
        destination — the scenario the paper's offline/online split targets —
        do not pay the construction cost again.  With
        ``pin_heuristics=False`` the router holds no references of its own
        and consults the factory every time — the mode a byte-budgeted
        engine cache uses, so an evicted table's memory is actually
        reclaimed instead of staying pinned here.
        """
        if not self._pin_heuristics:
            return self._factory(self._graph, destination)
        if destination not in self._heuristics:
            self._heuristics[destination] = self._factory(self._graph, destination)
        return self._heuristics[destination]

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def route(self, query: RoutingQuery) -> RoutingResult:
        """Evaluate one arriving-on-time query."""
        start = time.perf_counter()
        heuristic = self.heuristic_for(query.destination)
        if self._config.expansion == "batched":
            best_path, best_prob, best_distribution, explored = self._search_batched(
                query, heuristic
            )
        else:
            best_path, best_prob, best_distribution, explored = self._search_scalar(
                query, heuristic
            )
        return RoutingResult(
            query=query,
            method=self.method_name,
            path=best_path,
            probability=best_prob,
            distribution=best_distribution,
            explored=explored,
            runtime_seconds=time.perf_counter() - start,
        )

    def _search_batched(
        self, query: RoutingQuery, heuristic: Heuristic
    ) -> tuple[Path | None, float, Distribution | None, int]:
        budget = query.budget
        kernel = TExpansionKernel(
            self._graph,
            accelerator_for(self._graph),
            heuristic,
            budget,
            max_support=self._config.max_support,
        )
        explored = 0
        counter = 0
        heap: list[tuple[float, int, TCandidate]] = []
        for priority, candidate in kernel.seed(query.source):
            counter += 1
            heapq.heappush(heap, (-priority, counter, candidate))

        while heap and explored < self._config.max_explored:
            _, _, candidate = heapq.heappop(heap)
            explored += 1
            if candidate.path.target == query.destination:
                # Admissible priorities: nothing left in the queue can beat this path.
                return (
                    candidate.path,
                    candidate.distribution.prob_at_most(budget),
                    candidate.distribution,
                    explored,
                )
            for priority, child in kernel.expand(candidate):
                counter += 1
                heapq.heappush(heap, (-priority, counter, child))
        return None, 0.0, None, explored

    def _search_scalar(
        self, query: RoutingQuery, heuristic: Heuristic
    ) -> tuple[Path | None, float, Distribution | None, int]:
        graph = self._graph
        budget = query.budget
        explored = 0
        counter = 0
        heap: list[tuple[float, int, tuple[Path, Distribution, float]]] = []

        for element in graph.outgoing_elements(query.source):
            path = element.path
            if not path.is_simple():
                continue
            distribution = element.distribution
            if distribution.min() + heuristic.min_cost(path.target) > budget:
                continue
            priority = max_prob(distribution, heuristic, path.target, budget)
            if priority <= 0:
                continue
            counter += 1
            heapq.heappush(
                heap,
                (-priority, counter, (path, distribution, graph.path_min_cost(path))),
            )

        while heap and explored < self._config.max_explored:
            _, _, (path, distribution, min_cost) = heapq.heappop(heap)
            explored += 1
            if path.target == query.destination:
                # Admissible priorities: nothing left in the queue can beat this path.
                return path, distribution.prob_at_most(budget), distribution, explored
            for element in graph.outgoing_elements(path.target):
                if any(path.visits(v) for v in element.path.vertices[1:]):
                    continue
                # Candidate min-cost is carried incrementally: parent minimum
                # plus the element's own minimum, instead of re-summing the
                # whole path per expansion.
                new_min_cost = min_cost + graph.path_min_cost(element.path)
                if new_min_cost + heuristic.min_cost(element.path.target) > budget:
                    continue
                new_path = path.concat(element.path)
                new_distribution = graph.path_cost_distribution(
                    new_path, max_support=self._config.max_support
                )
                priority = max_prob(new_distribution, heuristic, new_path.target, budget)
                if priority <= 0:
                    continue
                counter += 1
                heapq.heappush(
                    heap, (-priority, counter, (new_path, new_distribution, new_min_cost))
                )
        return None, 0.0, None, explored
