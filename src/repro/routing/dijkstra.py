"""Deterministic shortest-path utilities (re-exported).

The implementations live in :mod:`repro.network.algorithms` so that lower
layers (heuristics, trajectory generation) can use them without importing the
routing package; this module re-exports them under the routing namespace for
convenience.
"""

from repro.network.algorithms import (
    free_flow_costs,
    shortest_path,
    shortest_path_cost,
    single_source_costs,
)

__all__ = [
    "single_source_costs",
    "shortest_path",
    "shortest_path_cost",
    "free_flow_costs",
]
