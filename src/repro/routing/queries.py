"""Routing queries and results.

A stochastic routing query is the triple the paper defines in Section 2.3:
source, destination and travel-cost budget (plus a departure time selecting
the peak or off-peak model).  A result carries the best path found, its cost
distribution and arrival probability, and the bookkeeping the experiments
report (runtime, number of explored candidate paths).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.distributions import Distribution
from repro.core.errors import ConfigurationError
from repro.core.paths import Path

__all__ = ["RoutingQuery", "RoutingResult"]


@dataclass(frozen=True)
class RoutingQuery:
    """One arriving-on-time query: maximise ``Prob(cost <= budget)`` from source to destination."""

    source: int
    destination: int
    budget: float
    departure_time: float = 8 * 3600.0
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ConfigurationError("source and destination must differ")
        if self.budget <= 0 or not math.isfinite(self.budget):
            raise ConfigurationError("the travel cost budget must be positive and finite")


@dataclass(frozen=True)
class RoutingResult:
    """The outcome of evaluating a routing query with one of the algorithms."""

    query: RoutingQuery
    method: str
    path: Path | None
    probability: float
    distribution: Distribution | None
    explored: int
    runtime_seconds: float

    @property
    def found(self) -> bool:
        """True when a path with positive arrival probability was found."""
        return self.path is not None

    def summary(self) -> str:
        """A one-line human-readable summary of the result."""
        if not self.found:
            return (
                f"[{self.method}] {self.query.source}->{self.query.destination}: "
                f"no path within budget {self.query.budget:g}"
            )
        return (
            f"[{self.method}] {self.query.source}->{self.query.destination}: "
            f"P(arrive within {self.query.budget:g}) = {self.probability:.3f} "
            f"({len(self.path.edges)} edges, {self.explored} candidates, "
            f"{self.runtime_seconds * 1000:.1f} ms)"
        )
