"""Execution backends for batch routing: serial, threads, and processes.

:meth:`repro.routing.engine.RoutingEngine.route_many` separates *what* a batch
means (per-query results identical to one :meth:`~RoutingEngine.route` call
per query) from *how* it is executed.  A backend receives the engine, the
parsed :class:`~repro.routing.methods.MethodSpec` and the query batch, and
returns results **in input order**:

* :class:`SerialBackend` — one destination-grouped pass in the calling thread
  (the default; heuristics stay hot across same-destination queries),
* :class:`ThreadBackend` — fan-out over a thread pool sharing the engine's
  thread-safe heuristic cache; helps when routing releases the GIL, and
* :class:`ProcessBackend` — fan-out over worker *processes*.  The pure-Python
  best-first search loops are GIL-bound, so threads cannot scale them;
  processes can, but they cannot share live graph objects.  Each worker
  therefore initialises once from the engine's :data:`EngineSpec` — either a
  :class:`DatasetRecipe` (re-run generation and T-path mining; deterministic,
  verified via the content fingerprint) or an :class:`ArtifactRef` (load the
  persisted index and heuristics from an on-disk
  :class:`~repro.persistence.store.ArtifactStore`, fingerprint-verified, zero
  rebuilds) — plus, optionally, a persisted heuristic bundle, and then
  answers destination-grouped chunks.

Every backend preserves input order and result parity with the serial
evaluation, because each router's search is deterministic given its
(deterministically built or loaded) heuristic.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path as FilePath
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.errors import ConfigurationError, DataError
from repro.routing.methods import MethodSpec
from repro.routing.queries import RoutingQuery, RoutingResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.routing.engine import RouterSettings, RoutingEngine

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "DatasetRecipe",
    "ArtifactRef",
    "EngineSpec",
    "destination_grouped_order",
    "balanced_destination_chunks",
]


def destination_grouped_order(queries: Sequence[RoutingQuery]) -> list[int]:
    """Query indices sorted by destination (ties keep input order).

    Batches are evaluated grouped by destination so each destination-specific
    heuristic is built (or loaded) once and stays hot for all its queries.
    """
    return sorted(range(len(queries)), key=lambda i: (queries[i].destination, i))


def _destination_chunks(queries: Sequence[RoutingQuery], order: Sequence[int]) -> list[list[int]]:
    """Split a destination-grouped order into per-destination index chunks."""
    chunks: list[list[int]] = []
    current_destination: int | None = None
    for index in order:
        destination = queries[index].destination
        if not chunks or destination != current_destination:
            chunks.append([])
            current_destination = destination
        chunks[-1].append(index)
    return chunks


def balanced_destination_chunks(
    queries: Sequence[RoutingQuery], order: Sequence[int], workers: int
) -> list[list[int]]:
    """Per-destination chunks, with dominant destinations split across workers.

    Purely per-destination chunking leaves workers idle on skewed batches: one
    hot destination (a stadium after the match, the airport at 6 am) forms a
    single chunk that serialises on one worker while the others finish their
    small chunks and wait.  Any chunk larger than an even per-worker share
    (``ceil(len(order) / workers)``) is therefore split into shares, so a hot
    destination spreads over idle workers.  Splitting never interleaves
    destinations — every piece still holds queries of exactly one destination,
    so each worker builds (or bundle-loads) at most one heuristic per piece;
    with heuristics prewarmed from a bundle or an artifact store the extra
    per-worker lookup is free.  Chunks are returned longest first (LPT) so the
    largest pieces are scheduled before the pool fills up.
    """
    chunks = _destination_chunks(queries, order)
    if workers > 1:
        share = -(-len(order) // workers)  # ceil division
        split: list[list[int]] = []
        for chunk in chunks:
            if len(chunk) <= share:
                split.append(chunk)
            else:
                split.extend(chunk[start : start + share] for start in range(0, len(chunk), share))
        chunks = split
    chunks.sort(key=len, reverse=True)
    return chunks


@runtime_checkable
class ExecutionBackend(Protocol):
    """How a batch of routing queries is executed.

    Implementations must return one :class:`RoutingResult` per query, aligned
    with the input order, and must propagate (not swallow) the first failure.
    """

    def run(
        self,
        engine: "RoutingEngine",
        method: MethodSpec,
        queries: Sequence[RoutingQuery],
    ) -> list[RoutingResult]:
        """Evaluate ``queries`` with ``method`` on ``engine``, in input order."""
        ...  # pragma: no cover - protocol


class SerialBackend:
    """Destination-grouped evaluation in the calling thread (the default)."""

    def run(
        self,
        engine: "RoutingEngine",
        method: MethodSpec,
        queries: Sequence[RoutingQuery],
    ) -> list[RoutingResult]:
        router = engine.router(method)
        results: list[RoutingResult | None] = [None] * len(queries)
        for index in destination_grouped_order(queries):
            results[index] = router.route(queries[index])
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return "SerialBackend()"


class ThreadBackend:
    """Thread-pool fan-out sharing the engine's thread-safe heuristic cache.

    Queries are submitted in destination-grouped order so concurrent misses
    for one destination serialise on the cache's per-key build lock (the
    heuristic is built exactly once).  Threads only pay off where the work
    releases the GIL; for the pure-Python search loops prefer
    :class:`ProcessBackend`.
    """

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ConfigurationError(f"ThreadBackend needs at least 1 worker, got {workers}")
        self.workers = workers

    def run(
        self,
        engine: "RoutingEngine",
        method: MethodSpec,
        queries: Sequence[RoutingQuery],
    ) -> list[RoutingResult]:
        router = engine.router(method)
        results: list[RoutingResult | None] = [None] * len(queries)
        order = destination_grouped_order(queries)
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            for index, result in zip(order, pool.map(lambda i: router.route(queries[i]), order)):
                results[index] = result
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"ThreadBackend(workers={self.workers})"


@dataclass(frozen=True)
class DatasetRecipe:
    """A serialisable recipe that *re-mines* a :class:`RoutingEngine` anywhere.

    The recipe names one of the bundled deterministic datasets and the offline
    pipeline parameters; :meth:`build_engine` re-runs generation, T-path
    mining and (optionally) the V-path closure, producing graphs whose
    :meth:`~repro.core.pace_graph.PaceGraph.content_fingerprint` matches any
    other engine built from the same recipe — which is what lets multiprocess
    workers share heuristic cache keys and persisted bundles with the parent
    process.  Re-mining is the right tool for tests and experiments; a
    deployment should mine once, persist the results with
    :meth:`~repro.routing.engine.RoutingEngine.save_artifacts` and boot
    workers from the resulting :class:`ArtifactRef` instead.
    """

    dataset: str
    regime: str = "peak"
    tau: int = 20
    resolution: float = 5.0
    max_cardinality: int = 4
    build_vpaths: bool = True

    def build_engine(self, settings: "RouterSettings | None" = None) -> "RoutingEngine":
        """Generate the dataset, mine the models and wrap them in an engine."""
        from repro.datasets.synthetic import dataset_by_name
        from repro.routing.engine import RoutingEngine
        from repro.tpaths.extraction import TPathMinerConfig, build_pace_graph
        from repro.vpaths.updated_graph import UpdatedPaceGraph

        dataset = dataset_by_name(self.dataset)
        trajectories = list(dataset.regime(self.regime))
        pace = build_pace_graph(
            dataset.network,
            trajectories,
            TPathMinerConfig(
                tau=self.tau,
                max_cardinality=self.max_cardinality,
                resolution=self.resolution,
            ),
        )
        updated = None
        if self.build_vpaths:
            updated, _ = UpdatedPaceGraph.build(pace)
        return RoutingEngine(
            pace,
            updated,
            settings=settings,
            spec=self,
            provenance={
                "source": "recipe",
                "dataset": dataset.provenance(),
                "regime": self.regime,
                "tau": self.tau,
            },
        )


@dataclass(frozen=True)
class ArtifactRef:
    """A pointer to an on-disk :class:`~repro.persistence.store.ArtifactStore`.

    The artifact counterpart of :class:`DatasetRecipe`: instead of re-running
    the offline pipeline, :meth:`build_engine` loads the persisted index (and
    any persisted heuristics) from the store at ``path`` — cold-starting in
    seconds instead of re-mining minutes, which is what lets a deployment
    mine once and fan out many workers.  The optional expected fingerprints
    pin the ref to specific graph *content*: a parent engine hands workers a
    ref carrying its own fingerprints, and a worker whose store was swapped
    or corrupted fails loudly instead of serving a different city.
    """

    path: str
    pace_fingerprint: str | None = None
    updated_fingerprint: str | None = None
    #: Boot-time residency policy, mirrored into every worker this ref
    #: spawns: which persisted heuristics to make resident up front
    #: (``"all"``, ``"none"`` or a tuple of store entry keys) and the
    #: resident tier's byte budget (``None`` = unbounded).  Kept hashable
    #: (tuple, not list) because worker-pool respawn decisions compare refs.
    prewarm: "str | tuple[str, ...]" = "all"
    cache_bytes: int | None = None

    def build_engine(self, settings: "RouterSettings | None" = None) -> "RoutingEngine":
        """Load the engine from the artifact store, verifying fingerprints."""
        from repro.routing.engine import RoutingEngine

        engine = RoutingEngine.from_artifacts(
            self.path,
            settings=settings,
            prewarm=self.prewarm,
            cache_bytes=self.cache_bytes,
        )
        if (
            self.pace_fingerprint is not None
            and engine.pace_graph.content_fingerprint() != self.pace_fingerprint
        ):
            raise DataError(
                f"artifact store {self.path} holds a different PACE graph than this "
                f"ref expects (content fingerprint "
                f"{engine.pace_graph.content_fingerprint()} != {self.pace_fingerprint})"
            )
        if self.updated_fingerprint is not None and (
            engine.updated_graph is None
            or engine.updated_graph.content_fingerprint() != self.updated_fingerprint
        ):
            raise DataError(
                f"artifact store {self.path} holds a different V-path closure than "
                f"this ref expects (fingerprint {self.updated_fingerprint})"
            )
        return engine


#: Everything a :class:`RoutingEngine` can be (re)built from: re-mine from a
#: deterministic dataset recipe, or boot from a persisted artifact store.
EngineSpec = DatasetRecipe | ArtifactRef


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker process needs to become a routing engine."""

    spec: EngineSpec
    settings: "RouterSettings"
    heuristics_path: str | None
    pace_fingerprint: str | None
    updated_fingerprint: str | None


#: Per-process engine, populated once by :func:`_initialise_worker`.
_worker_engine: "RoutingEngine | None" = None


def _initialise_worker(config: _WorkerConfig) -> None:
    """Build (and optionally prewarm) this worker process's engine, once."""
    global _worker_engine
    engine = config.spec.build_engine(settings=config.settings)
    if (
        config.pace_fingerprint is not None
        and engine.pace_graph.content_fingerprint() != config.pace_fingerprint
    ):
        raise DataError(
            f"worker built a different PACE graph from spec {config.spec!r}: "
            "the spec does not reproduce the parent engine's graphs"
        )
    if config.updated_fingerprint is not None and (
        engine.updated_graph is None
        or engine.updated_graph.content_fingerprint() != config.updated_fingerprint
    ):
        raise DataError(
            f"worker built a different V-path closure from spec {config.spec!r}: "
            "the spec does not reproduce the parent engine's graphs"
        )
    if config.heuristics_path is not None:
        engine.prewarm(config.heuristics_path)
    engine.build_accelerators()
    _worker_engine = engine


def _route_chunk(method_name: str, queries: list[RoutingQuery]) -> list[RoutingResult]:
    """Answer one destination-grouped chunk on this worker's engine."""
    if _worker_engine is None:  # pragma: no cover - initializer always ran first
        raise RuntimeError("routing worker used before initialisation")
    return [_worker_engine.route(query, method=method_name) for query in queries]


def _worker_ping() -> int:
    """A trivial round-trip proving a worker is alive and initialised."""
    return os.getpid()


def _crash_worker() -> None:  # pragma: no cover - runs (and dies) in a worker
    """Kill the worker process that picks this task up — fault injection only.

    ``os._exit`` skips every ``finally``/``atexit`` hook, exactly like a
    segfault or an OOM kill would, so the parent observes a genuine
    ``BrokenProcessPool``, not a polite exception.
    """
    os._exit(3)


class ProcessBackend:
    """Worker-process fan-out for the GIL-bound pure-Python search loops.

    Workers are spawned lazily on the first :meth:`run` and **kept alive**
    across batches (the pool is the unit of serving, like the paper's
    offline/online split): each worker initialises exactly once from the
    parent engine's :data:`EngineSpec` — re-mining from a
    :class:`DatasetRecipe`, or cold-booting the persisted index and
    heuristics from an :class:`ArtifactRef` with zero rebuilds; either way
    verified against the parent's graph content fingerprints — and optionally
    prewarming from a heuristic bundle (``heuristics_path``), so steady-state
    batches pay only for routing.  Use :meth:`close` (or a ``with`` block) to
    release the workers.

    A query failing in a worker propagates its exception to the caller (the
    pool survives); a worker failing to initialise surfaces as a
    ``BrokenProcessPool`` instead of hanging the batch.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        heuristics_path: str | FilePath | None = None,
        start_method: str | None = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"ProcessBackend needs at least 1 worker, got {workers}")
        self.workers = workers
        self.heuristics_path = None if heuristics_path is None else str(heuristics_path)
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._pool_config: _WorkerConfig | None = None
        self._generation = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _worker_config(self, engine: "RoutingEngine") -> _WorkerConfig:
        spec = engine.spec
        if spec is None:
            raise ConfigurationError(
                "ProcessBackend workers rebuild the engine in their own process, which "
                "needs a serialisable spec: construct the engine via "
                "DatasetRecipe(...).build_engine(), RoutingEngine.from_artifacts(store), "
                "or RoutingEngine(..., spec=...)."
            )
        return _WorkerConfig(
            spec=spec,
            settings=engine.settings,
            heuristics_path=self.heuristics_path,
            pace_fingerprint=engine.pace_graph.content_fingerprint(),
            updated_fingerprint=(
                None
                if engine.updated_graph is None
                else engine.updated_graph.content_fingerprint()
            ),
        )

    def _ensure_pool(self, engine: "RoutingEngine") -> ProcessPoolExecutor:
        config = self._worker_config(engine)
        with self._lock:
            if self._pool is not None and self._pool_config != config:
                # The backend was handed a different engine; old workers answer
                # for the wrong graphs, so start over.
                self._pool.shutdown(wait=True)
                self._pool = None
            if self._pool is None:
                context = multiprocessing.get_context(self.start_method)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=context,
                    initializer=_initialise_worker,
                    initargs=(config,),
                )
                self._pool_config = config
            return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
                self._pool_config = None

    # ------------------------------------------------------------------ #
    # Respawn hooks (the serving tier's recovery path; see repro.serving)
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """How many times the pool has been discarded for a fresh spawn."""
        with self._lock:
            return self._generation

    def respawn(self) -> int:
        """Discard the current pool so the next :meth:`run` spawns a fresh one.

        The supervisor's recovery hook after a ``BrokenProcessPool``: a broken
        executor can never accept work again, so the only way back to process
        fan-out is a new pool.  The old executor is shut down without waiting
        (its futures are already failed); returns the new generation number.
        """
        with self._lock:
            pool = self._pool
            self._pool = None
            self._pool_config = None
            self._generation += 1
            generation = self._generation
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        return generation

    def ensure_ready(self, engine: "RoutingEngine", *, timeout: float | None = 60.0) -> int:
        """Spawn the pool for ``engine`` (if needed) and prove a worker answers.

        Initialisation failures (a worker that cannot rebuild the engine, a
        store that vanished) surface here — as ``BrokenProcessPool`` — instead
        of on the first real batch, which is what lets a respawn loop probe
        health without risking caller traffic.  Returns the answering worker's
        pid.
        """
        pool = self._ensure_pool(engine)
        return pool.submit(_worker_ping).result(timeout=timeout)

    def kill_one_worker(self, *, wait: bool = True, timeout: float = 30.0) -> bool:
        """Hard-kill one live worker process (fault injection only).

        Submits a task that ``os._exit``\\ s whichever worker picks it up, so
        the pool genuinely breaks the way it would under a segfault or OOM
        kill.  Returns ``False`` when no pool is live (nothing to kill).  With
        ``wait`` the call blocks until the executor has noticed the death, so
        callers can deterministically exercise the broken-pool path.
        """
        with self._lock:
            pool = self._pool
        if pool is None:
            return False
        future = pool.submit(_crash_worker)
        if wait:
            try:
                future.result(timeout=timeout)
            except (BrokenProcessPool, TimeoutError):
                pass  # BrokenProcessPool is the expected outcome of the kill
        return True

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        engine: "RoutingEngine",
        method: MethodSpec,
        queries: Sequence[RoutingQuery],
    ) -> list[RoutingResult]:
        pool = self._ensure_pool(engine)
        order = destination_grouped_order(queries)
        chunks = balanced_destination_chunks(queries, order, self.workers)
        futures = [
            pool.submit(_route_chunk, method.canonical_name, [queries[i] for i in chunk])
            for chunk in chunks
        ]
        results: list[RoutingResult | None] = [None] * len(queries)
        for chunk, future in zip(chunks, futures):
            for index, result in zip(chunk, future.result()):
                # Workers return pickled copies; rebind each result to the
                # caller's query object so identity semantics match the
                # serial backend.
                results[index] = replace(result, query=queries[index])
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:
        return (
            f"ProcessBackend(workers={self.workers}, heuristics_path={self.heuristics_path!r})"
        )
