"""Bundled datasets: the paper's running example and synthetic city datasets."""

from repro.datasets.paper_example import PaperExample, build_paper_example
from repro.datasets.synthetic import (
    DATASET_NAMES,
    DatasetConfig,
    SyntheticDataset,
    aalborg_like,
    build_dataset,
    country_like,
    dataset_by_name,
    tiny_dataset,
    xian_like,
)

__all__ = [
    "PaperExample",
    "build_paper_example",
    "DatasetConfig",
    "SyntheticDataset",
    "build_dataset",
    "aalborg_like",
    "xian_like",
    "country_like",
    "tiny_dataset",
    "dataset_by_name",
    "DATASET_NAMES",
]
