"""Synthetic city datasets standing in for the paper's Aalborg and Xi'an data.

The paper evaluates on two proprietary (road network, GPS fleet) pairs.  This
module builds two synthetic stand-ins with the same *roles*:

* ``aalborg_like`` — the smaller, densely covered network (the paper's
  Aalborg trajectories cover 23 % of the edges and are short),
* ``xian_like`` — the larger network with sparser coverage and longer trips.

Both are scaled down to laptop size (the reproduction band flags the
full-city index build as too slow for pure Python), but keep the properties
the algorithms care about: grid-like topology, arterial/residential speed
hierarchy, trips concentrated on popular relations, correlated edge costs and
distinct peak / off-peak regimes.  Generation is fully deterministic given
the configuration, so tests and benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.network.generators import GridCityConfig, generate_grid_city
from repro.network.road_network import RoadNetwork
from repro.network.statistics import NetworkStatistics, compute_statistics
from repro.trajectories.generator import TrajectoryGeneratorConfig, generate_trajectories
from repro.trajectories.model import OFF_PEAK, PEAK, Trajectory
from repro.trajectories.outliers import OutlierFilterConfig, clean_trajectories
from repro.trajectories.splits import split_by_regime

__all__ = [
    "SyntheticDataset",
    "DatasetConfig",
    "aalborg_like",
    "xian_like",
    "country_like",
    "build_dataset",
    "tiny_dataset",
    "dataset_by_name",
    "DATASET_NAMES",
]


@dataclass(frozen=True)
class DatasetConfig:
    """A named combination of network and trajectory generator settings."""

    name: str
    grid: GridCityConfig
    trajectories: TrajectoryGeneratorConfig
    outliers: OutlierFilterConfig = field(default_factory=OutlierFilterConfig)


@dataclass(frozen=True)
class SyntheticDataset:
    """A ready-to-use dataset: network, cleaned trajectories and regime splits.

    ``config`` records the generator configuration the dataset was built from
    (when built through :func:`build_dataset`), so downstream consumers — the
    artifact-store manifest in particular — can persist *how* the data came to
    be (grid shape, seeds, trip mix) alongside what was mined from it.
    """

    name: str
    network: RoadNetwork
    trajectories: tuple[Trajectory, ...]
    peak: tuple[Trajectory, ...]
    off_peak: tuple[Trajectory, ...]
    config: DatasetConfig | None = None

    def statistics(self) -> NetworkStatistics:
        """Table 7-style statistics of the dataset."""
        return compute_statistics(self.network, list(self.trajectories), name=self.name)

    def provenance(self) -> dict:
        """Generation provenance for manifests: name, sizes and seeds."""
        record: dict = {
            "name": self.name,
            "num_vertices": self.network.num_vertices,
            "num_edges": self.network.num_edges,
            "num_trajectories": len(self.trajectories),
        }
        if self.config is not None:
            record["seeds"] = {
                "grid": self.config.grid.seed,
                "trajectories": self.config.trajectories.seed,
            }
        return record

    def regime(self, name: str) -> tuple[Trajectory, ...]:
        """Trajectories of one regime, ``"peak"`` or ``"off-peak"``."""
        if name == PEAK.name:
            return self.peak
        if name == OFF_PEAK.name:
            return self.off_peak
        raise KeyError(f"unknown regime {name!r}")


#: Default configuration mirroring the role of the Aalborg dataset (D1).
AALBORG_LIKE = DatasetConfig(
    name="aalborg-like",
    grid=GridCityConfig(
        rows=10,
        cols=10,
        spacing=220.0,
        jitter=25.0,
        removal_probability=0.12,
        arterial_every=3,
        arterial_speed=80.0,
        residential_speed=50.0,
        seed=101,
    ),
    trajectories=TrajectoryGeneratorConfig(
        num_trajectories=2400,
        num_hubs=10,
        hub_trip_fraction=0.85,
        peak_fraction=0.5,
        seed=102,
    ),
)

#: Default configuration mirroring the role of the Xi'an dataset (D2): larger
#: network, sparser coverage, longer trips.
XIAN_LIKE = DatasetConfig(
    name="xian-like",
    grid=GridCityConfig(
        rows=14,
        cols=14,
        spacing=180.0,
        jitter=20.0,
        removal_probability=0.10,
        arterial_every=4,
        arterial_speed=70.0,
        residential_speed=40.0,
        seed=201,
    ),
    trajectories=TrajectoryGeneratorConfig(
        num_trajectories=2000,
        num_hubs=8,
        hub_trip_fraction=0.8,
        peak_fraction=0.5,
        seed=202,
    ),
)


#: Configuration mirroring a *country-scale* deployment in miniature: an order
#: of magnitude more vertices than the city stand-ins, longer trips spanning
#: several "cities" (hub clusters), and budgets that force wide heuristic
#: bands (large η).  This is the scenario the columnar v2 artifacts and the
#: band-compressed Bellman build exist for.  Deliberately **not** exercised by
#: the tier-1 suite — generation plus T-path mining takes minutes, so only the
#: benchmarks (and explicit CLI invocations) build it.
COUNTRY_LIKE = DatasetConfig(
    name="country-like",
    grid=GridCityConfig(
        rows=32,
        cols=32,
        spacing=320.0,
        jitter=35.0,
        removal_probability=0.10,
        arterial_every=4,
        arterial_speed=90.0,
        residential_speed=45.0,
        seed=301,
    ),
    trajectories=TrajectoryGeneratorConfig(
        num_trajectories=6000,
        num_hubs=18,
        hub_trip_fraction=0.8,
        peak_fraction=0.5,
        seed=302,
    ),
)


def build_dataset(config: DatasetConfig) -> SyntheticDataset:
    """Generate network and trajectories for a configuration and clean them."""
    network = generate_grid_city(config.grid, name=config.name)
    raw = generate_trajectories(network, config.trajectories)
    cleaned = clean_trajectories(network, raw, config.outliers)
    by_regime = split_by_regime(cleaned, [PEAK, OFF_PEAK])
    return SyntheticDataset(
        name=config.name,
        network=network,
        trajectories=tuple(cleaned),
        peak=tuple(by_regime[PEAK.name]),
        off_peak=tuple(by_regime[OFF_PEAK.name]),
        config=config,
    )


def aalborg_like(*, scale: float = 1.0) -> SyntheticDataset:
    """The Aalborg-like dataset (D1).  ``scale`` shrinks the trajectory count for tests."""
    config = AALBORG_LIKE
    # Sentinel check against the literal default, not arithmetic output.
    if scale != 1.0:  # repro: ignore[float-equality]
        config = replace(
            config,
            trajectories=replace(
                config.trajectories,
                num_trajectories=max(50, int(config.trajectories.num_trajectories * scale)),
            ),
        )
    return build_dataset(config)


def xian_like(*, scale: float = 1.0) -> SyntheticDataset:
    """The Xi'an-like dataset (D2).  ``scale`` shrinks the trajectory count for tests."""
    config = XIAN_LIKE
    # Sentinel check against the literal default, not arithmetic output.
    if scale != 1.0:  # repro: ignore[float-equality]
        config = replace(
            config,
            trajectories=replace(
                config.trajectories,
                num_trajectories=max(50, int(config.trajectories.num_trajectories * scale)),
            ),
        )
    return build_dataset(config)


def country_like(*, scale: float = 1.0) -> SyntheticDataset:
    """The country-scale stress dataset.  ``scale`` shrinks the trajectory count.

    Benchmark-only by design: at full scale this is minutes of generation and
    mining, which is exactly the offline cost the artifact store amortises —
    nothing in the tier-1 suite should build it.
    """
    config = COUNTRY_LIKE
    # Sentinel check against the literal default, not arithmetic output.
    if scale != 1.0:  # repro: ignore[float-equality]
        config = replace(
            config,
            trajectories=replace(
                config.trajectories,
                num_trajectories=max(50, int(config.trajectories.num_trajectories * scale)),
            ),
        )
    return build_dataset(config)


#: The named bundled datasets; generation is deterministic, so loading the same
#: name in two different processes yields structurally identical datasets.
_DATASET_BUILDERS = {
    "tiny": lambda: tiny_dataset(),
    "aalborg-like": lambda: aalborg_like(),
    "xian-like": lambda: xian_like(),
    "country-like": lambda: country_like(),
}

DATASET_NAMES = tuple(sorted(_DATASET_BUILDERS))


def dataset_by_name(name: str) -> SyntheticDataset:
    """Build one of the bundled deterministic datasets by its registry name.

    This is the lookup behind every place that names a dataset instead of
    holding one — the CLI, and the :class:`~repro.routing.backends.EngineSpec`
    that multiprocess workers rebuild their engines from.
    """
    try:
        builder = _DATASET_BUILDERS[name]
    except KeyError as exc:
        raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}") from exc
    return builder()


def tiny_dataset(*, seed: int = 7) -> SyntheticDataset:
    """A very small dataset (6x6 grid, few hundred trips) for unit tests."""
    config = DatasetConfig(
        name="tiny",
        grid=GridCityConfig(
            rows=6,
            cols=6,
            spacing=200.0,
            jitter=15.0,
            removal_probability=0.08,
            arterial_every=3,
            seed=seed,
        ),
        trajectories=TrajectoryGeneratorConfig(
            num_trajectories=400,
            num_hubs=6,
            hub_trip_fraction=0.9,
            peak_fraction=0.5,
            seed=seed + 1,
        ),
    )
    return build_dataset(config)
