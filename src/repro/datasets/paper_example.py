"""The running example of the paper (Figures 2, 3, 5 and 6).

The paper illustrates the EDGE and PACE models with a small road network of
eight vertices (``vs``, ``v1`` ... ``v6``, ``vd``) and ten edges, five T-paths
and the derived reversed graph / heuristic tables.  This module rebuilds that
example exactly (edge endpoints and distributions were reconstructed from
Figures 2 and 5 and the worked iterations in Table 3), which makes it a
precise fixture for unit tests:

* ``v.getMin()`` values must match Figure 6(a) (edges only) and 6(b)
  (edges + T-paths),
* the shortest-path-tree iterations must match Table 3, and
* path distributions such as ``D_J(<e1, e4, e9>) = p1 ⋄ p2`` must follow Eq. 1.

The joint distributions of the T-paths are not printed in the paper (only the
total-cost distributions are), so we construct joints whose totals equal the
printed ones; all documented quantities depend only on those totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.distributions import Distribution
from repro.core.edge_graph import EdgeGraph
from repro.core.joint import JointDistribution
from repro.core.pace_graph import PaceGraph
from repro.network.road_network import RoadNetwork

__all__ = [
    "PaperExample",
    "VS",
    "V1",
    "V2",
    "V3",
    "V4",
    "V5",
    "V6",
    "VD",
    "build_paper_example",
]

# Vertex ids: the paper's vs, v1..v6, vd.
VS, V1, V2, V3, V4, V5, V6, VD = range(8)

#: Edge endpoints keyed by the paper's edge number (1-based, e1..e10).
_EDGE_ENDPOINTS = {
    1: (VS, V1),
    2: (VS, V4),
    3: (V4, V5),
    4: (V1, V2),
    5: (V1, V5),
    6: (V5, V6),
    7: (V2, V6),
    8: (V6, VD),
    9: (V2, V3),
    10: (V3, VD),
}

#: Edge cost distributions from Figure 2, keyed by the paper's edge number.
_EDGE_WEIGHTS = {
    1: [(8, 0.9), (10, 0.1)],
    2: [(8, 1.0)],
    3: [(13, 0.5), (16, 0.5)],
    4: [(6, 0.2), (10, 0.8)],
    5: [(4, 0.4), (6, 0.6)],
    6: [(9, 0.3), (10, 0.7)],
    7: [(12, 1.0)],
    8: [(4, 1.0)],
    9: [(5, 0.6), (7, 0.4)],
    10: [(7, 1.0)],
}

#: T-path definitions from Figure 3: edge numbers and joint outcomes whose
#: totals equal the printed total-cost distributions.
_TPATH_JOINTS = {
    "p1": ([1, 4], {(8.0, 8.0): 0.2, (10.0, 8.0): 0.8}),       # totals [16, .2], [18, .8]
    "p2": ([4, 9], {(8.0, 5.0): 0.7, (8.0, 7.0): 0.3}),        # totals [13, .7], [15, .3]
    "p3": ([3, 6], {(13.0, 9.0): 0.6, (18.0, 10.0): 0.4}),     # totals [22, .6], [28, .4]
    "p4": ([6, 8], {(11.0, 4.0): 0.5, (12.0, 4.0): 0.5}),      # totals [15, .5], [16, .5]
    "p5": ([3, 6, 8], {(13.0, 13.0, 4.0): 0.6, (15.0, 13.0, 4.0): 0.4}),  # [30, .6], [32, .4]
}

#: Planar coordinates (metres) laid out as in Figure 2: top row vs..v3, bottom row v4..vd.
#: The spacing is chosen small enough that the Euclidean/max-speed heuristic (T-B-EU)
#: stays admissible with respect to the abstract edge costs of the figure.
_COORDINATES = {
    VS: (0.0, 100.0),
    V1: (100.0, 100.0),
    V2: (200.0, 100.0),
    V3: (300.0, 100.0),
    V4: (0.0, 0.0),
    V5: (100.0, 0.0),
    V6: (200.0, 0.0),
    VD: (300.0, 0.0),
}

#: Expected v.getMin() values for destination vd, from Figure 6.
EDGE_ONLY_GET_MIN = {VS: 25, V1: 17, V2: 12, V3: 7, V4: 26, V5: 13, V6: 4, VD: 0}
PACE_GET_MIN = {VS: 27, V1: 19, V2: 12, V3: 7, V4: 30, V5: 15, V6: 4, VD: 0}


@dataclass(frozen=True)
class PaperExample:
    """The paper's running example, exposing both models and the name maps."""

    network: RoadNetwork
    edge_graph: EdgeGraph
    pace_graph: PaceGraph
    edge_ids: dict[str, int]
    tpaths: dict[str, tuple[int, ...]]

    @property
    def source(self) -> int:
        """The example's source vertex ``vs``."""
        return VS

    @property
    def destination(self) -> int:
        """The example's destination vertex ``vd``."""
        return VD


def build_paper_example(*, tau: int = 2) -> PaperExample:
    """Build the Figure 2 / Figure 3 example network with its EDGE and PACE graphs."""
    network = RoadNetwork(name="paper-example")
    for vertex_id, (x, y) in _COORDINATES.items():
        network.add_vertex(vertex_id, x, y)

    edge_ids: dict[str, int] = {}
    for number, (source, target) in _EDGE_ENDPOINTS.items():
        # A 90 km/h speed limit keeps the Euclidean/max-speed bound below every
        # abstract edge cost of the figure (e.g. e8 covers 100 m in 4 time units).
        segment = network.add_edge(source, target, edge_id=number, length=100.0, speed_limit=90.0)
        edge_ids[f"e{number}"] = segment.edge_id

    weights = {
        edge_ids[f"e{number}"]: Distribution.from_pairs(pairs)
        for number, pairs in _EDGE_WEIGHTS.items()
    }
    edge_graph = EdgeGraph(network, weights)
    pace_graph = PaceGraph(edge_graph, tau=tau)

    tpath_edges: dict[str, tuple[int, ...]] = {}
    for name, (edge_numbers, joint_pmf) in _TPATH_JOINTS.items():
        ids = [edge_ids[f"e{n}"] for n in edge_numbers]
        path = network.path_from_edge_ids(ids)
        joint = JointDistribution(ids, joint_pmf)
        pace_graph.add_tpath(path, joint, support=tau)
        tpath_edges[name] = tuple(ids)

    return PaperExample(
        network=network,
        edge_graph=edge_graph,
        pace_graph=pace_graph,
        edge_ids=edge_ids,
        tpaths=tpath_edges,
    )
