"""The updated PACE graph ``G_p+`` with V-paths.

After the V-path closure, the graph offers for every vertex the set of
outgoing *elements* — edges, T-paths and V-paths — each with a total-cost
distribution.  Lemma 4.1 guarantees that the PACE cost distribution of any
path can be obtained by convolving the weights of a non-overlapping
decomposition into such elements, so routing on this graph uses convolution
only, and stochastic-dominance pruning is sound again.
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterator, Mapping

import numpy as np

from repro.core.elements import WeightedElement
from repro.core.errors import GraphError
from repro.core.pace_graph import PaceGraph, _hash_distribution
from repro.network.road_network import RoadNetwork
from repro.vpaths.builder import VPathBuilderConfig, VPathBuildResult, build_vpaths

__all__ = ["UpdatedPaceGraph"]


class UpdatedPaceGraph:
    """A PACE graph augmented with pre-assembled V-paths (the paper's ``G_p+``)."""

    def __init__(self, pace_graph: PaceGraph, vpaths: Mapping[tuple[int, ...], WeightedElement]):
        self._pace_graph = pace_graph
        self._vpaths: dict[tuple[int, ...], WeightedElement] = dict(vpaths)
        self._vpaths_by_source: dict[int, list[WeightedElement]] = {}
        self._vpaths_by_target: dict[int, list[WeightedElement]] = {}
        for element in self._vpaths.values():
            if not element.is_vpath():
                raise GraphError("UpdatedPaceGraph only accepts V-path elements")
            self._vpaths_by_source.setdefault(element.source, []).append(element)
            self._vpaths_by_target.setdefault(element.target, []).append(element)
        self._fingerprint: tuple[str, str] | None = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, pace_graph: PaceGraph, config: VPathBuilderConfig | None = None
    ) -> tuple["UpdatedPaceGraph", VPathBuildResult]:
        """Run the V-path closure and wrap the result (returns graph and build stats)."""
        result = build_vpaths(pace_graph, config)
        return cls(pace_graph, result.vpaths), result

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def pace_graph(self) -> PaceGraph:
        """The underlying PACE graph (edges and T-paths)."""
        return self._pace_graph

    @property
    def network(self) -> RoadNetwork:
        """The structural road network."""
        return self._pace_graph.network

    @property
    def num_vpaths(self) -> int:
        """The number of V-paths maintained."""
        return len(self._vpaths)

    def vpaths(self) -> Iterator[WeightedElement]:
        """Iterate over all V-paths."""
        return iter(self._vpaths.values())

    def has_vpath(self, edge_ids: tuple[int, ...]) -> bool:
        return tuple(edge_ids) in self._vpaths

    def vpath(self, edge_ids: tuple[int, ...]) -> WeightedElement:
        try:
            return self._vpaths[tuple(edge_ids)]
        except KeyError as exc:
            raise GraphError(f"no V-path for edge sequence {edge_ids}") from exc

    def content_fingerprint(self) -> str:
        """A stable digest of the closure: the PACE graph plus every V-path.

        Like :meth:`~repro.core.pace_graph.PaceGraph.content_fingerprint`,
        identical content yields identical fingerprints across processes, so
        heuristics built over one closure can be keyed, persisted and served
        by any engine over an equal closure.  The V-path set is fixed at
        construction; the digest delegates to the (cache-invalidating) PACE
        fingerprint for the mutable part and is memoised against it.
        """
        pace_fingerprint = self._pace_graph.content_fingerprint()
        if self._fingerprint is not None and self._fingerprint[0] == pace_fingerprint:
            return self._fingerprint[1]
        digest = hashlib.blake2b(digest_size=16)
        digest.update(b"updated-pace-graph/v1")
        digest.update(pace_fingerprint.encode("ascii"))
        digest.update(struct.pack("<q", len(self._vpaths)))
        for key in sorted(self._vpaths):
            digest.update(struct.pack("<q", len(key)))
            digest.update(np.asarray(key, dtype=np.int64).tobytes())
            _hash_distribution(digest, self._vpaths[key].distribution)
        self._fingerprint = (pace_fingerprint, digest.hexdigest())
        return self._fingerprint[1]

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def outgoing_elements(self, vertex_id: int) -> list[WeightedElement]:
        """Edges, T-paths and V-paths leaving a vertex."""
        elements = self._pace_graph.outgoing_elements(vertex_id)
        elements.extend(self._vpaths_by_source.get(vertex_id, []))
        return elements

    def incoming_elements(self, vertex_id: int) -> list[WeightedElement]:
        """Edges, T-paths and V-paths arriving at a vertex."""
        elements = self._pace_graph.incoming_elements(vertex_id)
        elements.extend(self._vpaths_by_target.get(vertex_id, []))
        return elements

    def out_degree_with_vpaths(self, vertex_id: int) -> int:
        """Number of traversable elements leaving a vertex in ``G_p+`` (Fig. 10d)."""
        return self._pace_graph.out_degree_with_tpaths(vertex_id) + len(
            self._vpaths_by_source.get(vertex_id, [])
        )

    def average_out_degree(self) -> float:
        """Average out-degree over all vertices, counting edges, T-paths and V-paths."""
        vertices = list(self.network.vertex_ids())
        if not vertices:
            return 0.0
        return sum(self.out_degree_with_vpaths(v) for v in vertices) / len(vertices)

    def max_out_degree(self) -> int:
        """Maximum out-degree over all vertices, counting edges, T-paths and V-paths."""
        return max(self.out_degree_with_vpaths(v) for v in self.network.vertex_ids())

    def __repr__(self) -> str:
        return (
            f"UpdatedPaceGraph(network={self.network.name!r}, "
            f"tpaths={self._pace_graph.num_tpaths}, vpaths={self.num_vpaths})"
        )
