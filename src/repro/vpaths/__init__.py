"""Virtual paths (V-paths): closure construction and the updated PACE graph."""

from repro.vpaths.builder import VPathBuilderConfig, VPathBuildResult, build_vpaths
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = [
    "VPathBuilderConfig",
    "VPathBuildResult",
    "build_vpaths",
    "UpdatedPaceGraph",
]
