"""Building virtual paths (V-paths) from overlapping T-paths.

Stochastic-dominance pruning needs independence between the pieces a path's
cost is assembled from.  The PACE model breaks that independence through
overlapping T-paths, so the paper pre-computes *virtual paths*: whenever two
T-paths overlap, their assembly (Eq. 1) is evaluated offline and stored as a
new V-path; overlapping V-paths are then merged into longer V-paths, and so
on.  After this closure, the distribution of any path decomposes into
non-overlapping edges / T-paths / V-paths, whose total costs are independent
(Lemma 4.1) — so online routing only needs convolution and can prune with
stochastic dominance again.

The construction here follows Section 4.1:

* round 1 combines overlapping T-path pairs whose merged underlying path is
  not itself a T-path,
* later rounds combine overlapping V-paths (the merged path can never be a
  T-path, because its sub-paths already had fewer than ``τ`` trajectories),
* merging stops when a round produces nothing new, or when the optional
  cardinality / count budgets are exhausted (the knobs this laptop-scale
  reproduction exposes because the closure is the expensive part of the
  paper's offline phase).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.elements import ElementKind, WeightedElement
from repro.core.errors import ConfigurationError, JointDistributionError
from repro.core.joint import JointDistribution
from repro.core.pace_graph import PaceGraph

__all__ = ["VPathBuilderConfig", "VPathBuildResult", "build_vpaths"]


@dataclass(frozen=True)
class VPathBuilderConfig:
    """Parameters bounding the V-path closure."""

    max_cardinality: int = 8
    max_vpaths: int = 20000
    max_joint_outcomes: int = 512
    max_rounds: int | None = None

    def validate(self) -> None:
        if self.max_cardinality < 2:
            raise ConfigurationError("max_cardinality must be at least 2")
        if self.max_vpaths < 1:
            raise ConfigurationError("max_vpaths must be positive")
        if self.max_joint_outcomes < 1:
            raise ConfigurationError("max_joint_outcomes must be positive")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be positive when given")


@dataclass(frozen=True)
class VPathBuildResult:
    """The outcome of the V-path closure."""

    vpaths: dict[tuple[int, ...], WeightedElement]
    rounds: int
    build_seconds: float

    @property
    def count(self) -> int:
        return len(self.vpaths)

    def cardinality_histogram(self) -> dict[int, int]:
        """Number of V-paths per cardinality (Fig. 10c groups V-paths this way)."""
        histogram: dict[int, int] = {}
        for element in self.vpaths.values():
            histogram[element.cardinality] = histogram.get(element.cardinality, 0) + 1
        return histogram


def _cap_joint(joint: JointDistribution, max_outcomes: int) -> JointDistribution:
    """Keep only the ``max_outcomes`` most likely outcomes (renormalised)."""
    if len(joint) <= max_outcomes:
        return joint
    ranked = sorted(joint.items(), key=lambda item: item[1], reverse=True)[:max_outcomes]
    return JointDistribution(joint.edge_ids, dict(ranked), normalise=True)


def _combine(
    left: WeightedElement,
    right: WeightedElement,
    max_outcomes: int,
) -> WeightedElement | None:
    """Merge two overlapping elements into a V-path candidate, or ``None`` if impossible."""
    overlap = left.path.overlap_with(right.path)
    if overlap is None or len(overlap) == len(right.path):
        return None
    merged_path = left.path.merge_overlapping(right.path)
    if not merged_path.is_simple():
        return None
    try:
        joint = left.joint_distribution().assemble(right.joint_distribution())
    except JointDistributionError:
        # The two joints disagree completely on their shared edges; skip the pair.
        return None
    joint = _cap_joint(joint, max_outcomes)
    return WeightedElement(
        kind=ElementKind.VPATH,
        path=merged_path,
        distribution=joint.total_cost_distribution(),
        joint=joint,
        support=0,
    )


def build_vpaths(
    pace_graph: PaceGraph, config: VPathBuilderConfig | None = None
) -> VPathBuildResult:
    """Run the V-path closure over the T-paths of a PACE graph."""
    config = config or VPathBuilderConfig()
    config.validate()
    start_time = time.perf_counter()

    tpath_keys = {tpath.path.edges for tpath in pace_graph.tpaths()}
    vpaths: dict[tuple[int, ...], WeightedElement] = {}
    # Elements of the previous round, indexed by their first edge for fast overlap probing.
    current_generation = list(pace_graph.tpaths())
    rounds = 0

    def register(element: WeightedElement) -> bool:
        key = element.path.edges
        if key in tpath_keys or key in vpaths:
            return False
        if element.cardinality > config.max_cardinality:
            return False
        vpaths[key] = element
        return True

    # Index all combinable elements (T-paths in round 1, V-paths later) by source vertex.
    while current_generation and (config.max_rounds is None or rounds < config.max_rounds):
        rounds += 1
        by_source: dict[int, list[WeightedElement]] = {}
        pool = current_generation if rounds > 1 else list(pace_graph.tpaths())
        for element in pool:
            by_source.setdefault(element.source, []).append(element)

        next_generation: list[WeightedElement] = []
        for left in current_generation if rounds > 1 else list(pace_graph.tpaths()):
            # Candidates must start at one of the vertices interior to / at the end of `left`.
            for start_vertex in left.path.vertices[1:]:
                for right in by_source.get(start_vertex, []):
                    if len(vpaths) >= config.max_vpaths:
                        break
                    combined = _combine(left, right, config.max_joint_outcomes)
                    if combined is None:
                        continue
                    if register(combined):
                        next_generation.append(combined)
                if len(vpaths) >= config.max_vpaths:
                    break
            if len(vpaths) >= config.max_vpaths:
                break
        if len(vpaths) >= config.max_vpaths:
            break
        current_generation = next_generation

    # The stored V-paths keep only their total-cost distribution: once the closure is
    # complete the joints are no longer needed (the whole point of V-paths).
    stripped = {
        key: WeightedElement(
            kind=ElementKind.VPATH,
            path=element.path,
            distribution=element.distribution,
            joint=None,
            support=0,
        )
        for key, element in vpaths.items()
    }
    elapsed = time.perf_counter() - start_time
    return VPathBuildResult(vpaths=stripped, rounds=rounds, build_seconds=elapsed)
