"""Directed road-network graphs with geometry.

A road network is a directed graph ``G = (V, E)`` where vertices are road
intersections (with planar coordinates) and edges are directed road segments
(with a length and a speed limit).  The uncertain models of the paper — the
edge-centric EDGE graph and the path-centric PACE graph — attach cost
distributions on top of this structural layer (see :mod:`repro.core`).

The class is intentionally self-contained (adjacency dictionaries, no
third-party graph library) so that the routing algorithms in
:mod:`repro.routing` control exactly what is traversed and how.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.core.errors import GraphError, PathError, UnknownEdgeError, UnknownVertexError
from repro.core.paths import Path

__all__ = ["Vertex", "RoadSegment", "RoadNetwork"]


@dataclass(frozen=True)
class Vertex:
    """A road intersection (or dead end) with planar coordinates in metres."""

    vertex_id: int
    x: float
    y: float

    def distance_to(self, other: "Vertex") -> float:
        """Euclidean distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class RoadSegment:
    """A directed road segment between two intersections.

    ``length`` is in metres and ``speed_limit`` in km/h; together they give
    the free-flow travel time used to derive deterministic costs for edges
    with no trajectory coverage (as the paper does for small roads).
    """

    edge_id: int
    source: int
    target: int
    length: float
    speed_limit: float = 50.0

    def free_flow_time(self) -> float:
        """The minimum travel time in seconds at the speed limit."""
        if self.speed_limit <= 0:
            raise GraphError(f"edge {self.edge_id} has a non-positive speed limit")
        return self.length / (self.speed_limit / 3.6)


class RoadNetwork:
    """A directed road network with geometry and constant-time adjacency lookups."""

    def __init__(self, name: str = "road-network"):
        self.name = name
        self._vertices: dict[int, Vertex] = {}
        self._edges: dict[int, RoadSegment] = {}
        self._out: dict[int, list[int]] = {}
        self._in: dict[int, list[int]] = {}
        self._by_endpoints: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex_id: int, x: float = 0.0, y: float = 0.0) -> Vertex:
        """Add (or replace) a vertex and return it."""
        vertex = Vertex(int(vertex_id), float(x), float(y))
        self._vertices[vertex.vertex_id] = vertex
        self._out.setdefault(vertex.vertex_id, [])
        self._in.setdefault(vertex.vertex_id, [])
        return vertex

    def add_edge(
        self,
        source: int,
        target: int,
        *,
        edge_id: int | None = None,
        length: float | None = None,
        speed_limit: float = 50.0,
    ) -> RoadSegment:
        """Add a directed road segment from ``source`` to ``target``.

        ``length`` defaults to the Euclidean distance between the endpoints.
        Parallel edges between the same pair of vertices are not supported.
        """
        if source not in self._vertices:
            raise UnknownVertexError(f"unknown source vertex {source}")
        if target not in self._vertices:
            raise UnknownVertexError(f"unknown target vertex {target}")
        if source == target:
            raise GraphError("self-loop edges are not supported")
        if (source, target) in self._by_endpoints:
            raise GraphError(f"edge from {source} to {target} already exists")
        if edge_id is None:
            edge_id = len(self._edges)
        if edge_id in self._edges:
            raise GraphError(f"edge id {edge_id} already exists")
        if length is None:
            length = self._vertices[source].distance_to(self._vertices[target])
        if length <= 0:
            raise GraphError(f"edge length must be positive, got {length!r}")
        segment = RoadSegment(int(edge_id), int(source), int(target), float(length), float(speed_limit))
        self._edges[segment.edge_id] = segment
        self._out[source].append(segment.edge_id)
        self._in[target].append(segment.edge_id)
        self._by_endpoints[(source, target)] = segment.edge_id
        return segment

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertices(self) -> Iterator[Vertex]:
        """Iterate over all vertices."""
        return iter(self._vertices.values())

    def vertex_ids(self) -> Iterator[int]:
        """Iterate over all vertex ids."""
        return iter(self._vertices.keys())

    def edges(self) -> Iterator[RoadSegment]:
        """Iterate over all road segments."""
        return iter(self._edges.values())

    def edge_ids(self) -> Iterator[int]:
        """Iterate over all edge ids."""
        return iter(self._edges.keys())

    def has_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edges

    def vertex(self, vertex_id: int) -> Vertex:
        """The vertex with the given id."""
        try:
            return self._vertices[vertex_id]
        except KeyError as exc:
            raise UnknownVertexError(f"unknown vertex {vertex_id}") from exc

    def edge(self, edge_id: int) -> RoadSegment:
        """The road segment with the given edge id."""
        try:
            return self._edges[edge_id]
        except KeyError as exc:
            raise UnknownEdgeError(f"unknown edge {edge_id}") from exc

    def edge_between(self, source: int, target: int) -> RoadSegment:
        """The road segment from ``source`` to ``target``."""
        try:
            return self._edges[self._by_endpoints[(source, target)]]
        except KeyError as exc:
            raise UnknownEdgeError(f"no edge from {source} to {target}") from exc

    def has_edge_between(self, source: int, target: int) -> bool:
        return (source, target) in self._by_endpoints

    def out_edges(self, vertex_id: int) -> list[RoadSegment]:
        """Outgoing road segments of a vertex."""
        if vertex_id not in self._vertices:
            raise UnknownVertexError(f"unknown vertex {vertex_id}")
        return [self._edges[e] for e in self._out[vertex_id]]

    def in_edges(self, vertex_id: int) -> list[RoadSegment]:
        """Incoming road segments of a vertex."""
        if vertex_id not in self._vertices:
            raise UnknownVertexError(f"unknown vertex {vertex_id}")
        return [self._edges[e] for e in self._in[vertex_id]]

    def out_degree(self, vertex_id: int) -> int:
        return len(self._out.get(vertex_id, []))

    def in_degree(self, vertex_id: int) -> int:
        return len(self._in.get(vertex_id, []))

    def neighbours(self, vertex_id: int) -> list[int]:
        """Vertices reachable from ``vertex_id`` by a single edge."""
        return [self._edges[e].target for e in self._out.get(vertex_id, [])]

    def euclidean_distance(self, a: int, b: int) -> float:
        """Euclidean distance in metres between two vertices."""
        return self.vertex(a).distance_to(self.vertex(b))

    def max_speed_limit(self) -> float:
        """The largest speed limit in the network (used by the T-B-EU heuristic)."""
        if not self._edges:
            raise GraphError("the network has no edges")
        return max(edge.speed_limit for edge in self._edges.values())

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def path_from_edge_ids(self, edge_ids: Sequence[int]) -> Path:
        """Build a :class:`~repro.core.paths.Path` from consecutive edge ids."""
        if not edge_ids:
            raise PathError("a path needs at least one edge")
        segments = [self.edge(e) for e in edge_ids]
        vertices = [segments[0].source]
        for previous, current in zip(segments, segments[1:]):
            if previous.target != current.source:
                raise PathError(
                    f"edges {previous.edge_id} and {current.edge_id} are not adjacent"
                )
        for segment in segments:
            vertices.append(segment.target)
        return Path([s.edge_id for s in segments], vertices)

    def path_from_vertex_ids(self, vertex_ids: Sequence[int]) -> Path:
        """Build a :class:`~repro.core.paths.Path` from a vertex sequence."""
        if len(vertex_ids) < 2:
            raise PathError("a path needs at least two vertices")
        edge_ids = []
        for a, b in zip(vertex_ids, vertex_ids[1:]):
            edge_ids.append(self.edge_between(a, b).edge_id)
        return Path(edge_ids, list(vertex_ids))

    def path_length(self, path: Path) -> float:
        """The total length in metres of a path."""
        return sum(self.edge(e).length for e in path.edges)

    def path_free_flow_time(self, path: Path) -> float:
        """The total free-flow travel time in seconds of a path."""
        return sum(self.edge(e).free_flow_time() for e in path.edges)

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    def reversed(self) -> "RoadNetwork":
        """A copy of the network with every edge direction flipped.

        Edge ids are preserved, so paths in the reversed network can be mapped
        back to the original; this is the structural part of the reversed
        graph ``G_p_rev`` used when building heuristics.
        """
        reversed_network = RoadNetwork(name=f"{self.name}-reversed")
        for vertex in self.vertices():
            reversed_network.add_vertex(vertex.vertex_id, vertex.x, vertex.y)
        for edge in self.edges():
            reversed_network.add_edge(
                edge.target,
                edge.source,
                edge_id=edge.edge_id,
                length=edge.length,
                speed_limit=edge.speed_limit,
            )
        return reversed_network

    def subgraph(self, vertex_ids: Iterable[int]) -> "RoadNetwork":
        """The induced subgraph over the given vertices (edge ids preserved)."""
        keep = set(vertex_ids)
        sub = RoadNetwork(name=f"{self.name}-subgraph")
        for vertex_id in keep:
            vertex = self.vertex(vertex_id)
            sub.add_vertex(vertex.vertex_id, vertex.x, vertex.y)
        for edge in self.edges():
            if edge.source in keep and edge.target in keep:
                sub.add_edge(
                    edge.source,
                    edge.target,
                    edge_id=edge.edge_id,
                    length=edge.length,
                    speed_limit=edge.speed_limit,
                )
        return sub

    def __repr__(self) -> str:
        return (
            f"RoadNetwork(name={self.name!r}, vertices={self.num_vertices}, "
            f"edges={self.num_edges})"
        )
