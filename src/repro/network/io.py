"""Serialisation of road networks to and from JSON files.

The on-disk format is a plain JSON document with ``vertices`` and ``edges``
arrays, which keeps datasets inspectable and diff-able.  Cost distributions
are serialised separately by :mod:`repro.core.pace_graph` /
:mod:`repro.heuristics.storage` because they depend on the chosen model.
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath

from repro.core.errors import DataError
from repro.network.road_network import RoadNetwork

__all__ = ["network_to_dict", "network_from_dict", "save_network", "load_network"]

_FORMAT_VERSION = 1


def network_to_dict(network: RoadNetwork) -> dict:
    """Convert a road network to a JSON-serialisable dictionary."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": network.name,
        "vertices": [
            {"id": v.vertex_id, "x": v.x, "y": v.y} for v in network.vertices()
        ],
        "edges": [
            {
                "id": e.edge_id,
                "source": e.source,
                "target": e.target,
                "length": e.length,
                "speed_limit": e.speed_limit,
            }
            for e in network.edges()
        ],
    }


def network_from_dict(payload: dict) -> RoadNetwork:
    """Rebuild a road network from :func:`network_to_dict` output."""
    # Imported here: repro.persistence's package __init__ pulls in the
    # heuristics codecs, which import the core graphs, which import this
    # network package — a module-level import would close that cycle.
    from repro.persistence.codecs import require_format_version

    require_format_version(payload, expected=_FORMAT_VERSION, what="network document")
    try:
        network = RoadNetwork(name=payload.get("name", "road-network"))
        for vertex in payload["vertices"]:
            network.add_vertex(vertex["id"], vertex.get("x", 0.0), vertex.get("y", 0.0))
        for edge in payload["edges"]:
            network.add_edge(
                edge["source"],
                edge["target"],
                edge_id=edge["id"],
                length=edge["length"],
                speed_limit=edge.get("speed_limit", 50.0),
            )
    except KeyError as exc:
        raise DataError(f"malformed network payload, missing key {exc}") from exc
    return network


def save_network(network: RoadNetwork, path: str | FilePath) -> None:
    """Write a road network to a JSON file."""
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(network_to_dict(network), handle, indent=2)


def load_network(path: str | FilePath) -> RoadNetwork:
    """Read a road network from a JSON file produced by :func:`save_network`."""
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"network file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return network_from_dict(payload)
