"""Synthetic road-network generators.

The paper evaluates on OpenStreetMap extracts of Aalborg and Xi'an.  Those
extracts (and the associated GPS fleets) are not available here, so the
datasets in :mod:`repro.datasets` are built on synthetic city networks
produced by this module.  The generator aims for the structural properties
that matter to the algorithms:

* planar, grid-like connectivity with an average vertex degree close to the
  2.0–2.5 range reported in Table 7,
* a hierarchy of road classes (arterials with high speed limits forming a
  sparse super-grid, residential streets elsewhere), so that trajectories
  concentrate on main roads exactly as the paper describes (23 % / 4 % edge
  coverage), and
* coordinates in metres so Euclidean-distance heuristics and the
  distance-bucketed query workload behave sensibly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.network.road_network import RoadNetwork

__all__ = ["GridCityConfig", "generate_grid_city"]


@dataclass(frozen=True)
class GridCityConfig:
    """Parameters for :func:`generate_grid_city`.

    Attributes
    ----------
    rows, cols:
        Grid dimensions; the network has at most ``rows * cols`` vertices.
    spacing:
        Distance in metres between neighbouring grid intersections.
    jitter:
        Maximum random displacement (metres) applied to each intersection so
        the network is not perfectly rectilinear.
    removal_probability:
        Probability that a candidate street between two neighbouring
        intersections is *not* built, which thins the grid towards realistic
        average degrees.
    arterial_every:
        Every ``arterial_every``-th row/column is an arterial with a higher
        speed limit; arterials are never removed, which keeps the network
        strongly connected in practice.
    arterial_speed, residential_speed:
        Speed limits in km/h for the two road classes.
    seed:
        Seed for the internal random generator (generation is deterministic
        given the configuration).
    """

    rows: int = 12
    cols: int = 12
    spacing: float = 250.0
    jitter: float = 30.0
    removal_probability: float = 0.12
    arterial_every: int = 4
    arterial_speed: float = 80.0
    residential_speed: float = 50.0
    seed: int = 7

    def validate(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise ConfigurationError("a grid city needs at least a 2x2 grid")
        if self.spacing <= 0:
            raise ConfigurationError("spacing must be positive")
        if not 0.0 <= self.removal_probability < 1.0:
            raise ConfigurationError("removal_probability must lie in [0, 1)")
        if self.arterial_every < 1:
            raise ConfigurationError("arterial_every must be at least 1")
        if self.arterial_speed <= 0 or self.residential_speed <= 0:
            raise ConfigurationError("speed limits must be positive")


def generate_grid_city(config: GridCityConfig | None = None, name: str = "grid-city") -> RoadNetwork:
    """Generate a synthetic city road network.

    The result is a directed :class:`~repro.network.road_network.RoadNetwork`
    where every built street contributes one edge in each direction (two-way
    streets), matching how the paper's networks are modelled.
    """
    config = config or GridCityConfig()
    config.validate()
    rng = random.Random(config.seed)
    network = RoadNetwork(name=name)

    def vertex_id(row: int, col: int) -> int:
        return row * config.cols + col

    for row in range(config.rows):
        for col in range(config.cols):
            x = col * config.spacing + rng.uniform(-config.jitter, config.jitter)
            y = row * config.spacing + rng.uniform(-config.jitter, config.jitter)
            network.add_vertex(vertex_id(row, col), x, y)

    def is_arterial(row: int, col: int, horizontal: bool) -> bool:
        if horizontal:
            return row % config.arterial_every == 0
        return col % config.arterial_every == 0

    def add_two_way(a: int, b: int, speed: float) -> None:
        if not network.has_edge_between(a, b):
            network.add_edge(a, b, speed_limit=speed)
        if not network.has_edge_between(b, a):
            network.add_edge(b, a, speed_limit=speed)

    for row in range(config.rows):
        for col in range(config.cols):
            here = vertex_id(row, col)
            if col + 1 < config.cols:
                arterial = is_arterial(row, col, horizontal=True)
                if arterial or rng.random() >= config.removal_probability:
                    speed = config.arterial_speed if arterial else config.residential_speed
                    add_two_way(here, vertex_id(row, col + 1), speed)
            if row + 1 < config.rows:
                arterial = is_arterial(row, col, horizontal=False)
                if arterial or rng.random() >= config.removal_probability:
                    speed = config.arterial_speed if arterial else config.residential_speed
                    add_two_way(here, vertex_id(row + 1, col), speed)

    _remove_isolated_vertices(network)
    return network


def _remove_isolated_vertices(network: RoadNetwork) -> None:
    """Drop vertices with no incident edges.

    The thinning step can occasionally leave a corner intersection with no
    streets; such vertices can never appear in a query and would only distort
    the data statistics, so they are removed by rebuilding in place.
    """
    isolated = [
        v.vertex_id
        for v in network.vertices()
        if network.out_degree(v.vertex_id) == 0 and network.in_degree(v.vertex_id) == 0
    ]
    if not isolated:
        return
    keep = [v for v in network.vertex_ids() if v not in set(isolated)]
    trimmed = network.subgraph(keep)
    network._vertices = trimmed._vertices
    network._edges = trimmed._edges
    network._out = trimmed._out
    network._in = trimmed._in
    network._by_endpoints = trimmed._by_endpoints
