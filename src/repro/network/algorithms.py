"""Deterministic shortest-path utilities.

These are the classical building blocks the paper relies on around the
stochastic machinery:

* Dijkstra's algorithm with a pluggable edge-cost function, used to generate
  meaningful travel-time budgets for the query workload (the paper runs
  Dijkstra on expected travel times and sets budgets to 50–150 % of the
  optimum) and to provide the deterministic "commercial router" baseline of
  the case study, and
* single-source cost maps over plain edges, used by the T-B-E binary
  heuristic (shortest-path tree from the destination over the reversed graph,
  edges only).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

from repro.core.errors import NoPathError, UnknownVertexError
from repro.core.paths import Path
from repro.network.road_network import RoadNetwork, RoadSegment

__all__ = [
    "single_source_costs",
    "shortest_path",
    "shortest_path_cost",
    "free_flow_costs",
]

EdgeCostFunction = Callable[[RoadSegment], float]


def free_flow_costs(network: RoadNetwork) -> EdgeCostFunction:
    """An edge-cost function returning free-flow travel times in seconds."""
    return lambda edge: edge.free_flow_time()


def single_source_costs(
    network: RoadNetwork,
    source: int,
    edge_cost: EdgeCostFunction,
    *,
    targets: set[int] | None = None,
) -> dict[int, float]:
    """Dijkstra single-source shortest-path costs from ``source``.

    Returns a mapping vertex -> cost for every reachable vertex.  When
    ``targets`` is given the search stops as soon as all targets are settled.
    """
    if not network.has_vertex(source):
        raise UnknownVertexError(f"unknown vertex {source}")
    remaining = set(targets) if targets else None
    costs: dict[int, float] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        cost, vertex = heapq.heappop(heap)
        if vertex in costs:
            continue
        costs[vertex] = cost
        if remaining is not None:
            remaining.discard(vertex)
            if not remaining:
                break
        for edge in network.out_edges(vertex):
            if edge.target in costs:
                continue
            weight = edge_cost(edge)
            if weight < 0:
                raise ValueError(f"negative edge cost {weight} on edge {edge.edge_id}")
            heapq.heappush(heap, (cost + weight, edge.target))
    return costs


def shortest_path(
    network: RoadNetwork,
    source: int,
    destination: int,
    edge_cost: EdgeCostFunction,
) -> tuple[Path, float]:
    """The least-cost path from ``source`` to ``destination`` and its cost.

    Raises :class:`~repro.core.errors.NoPathError` when the destination is
    unreachable.
    """
    if not network.has_vertex(source):
        raise UnknownVertexError(f"unknown vertex {source}")
    if not network.has_vertex(destination):
        raise UnknownVertexError(f"unknown vertex {destination}")
    if source == destination:
        raise NoPathError("source and destination coincide; a path needs at least one edge")

    settled: set[int] = set()
    best: dict[int, float] = {source: 0.0}
    parent_edge: dict[int, RoadSegment] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        cost, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex == destination:
            break
        for edge in network.out_edges(vertex):
            if edge.target in settled:
                continue
            candidate = cost + edge_cost(edge)
            if candidate < best.get(edge.target, float("inf")):
                best[edge.target] = candidate
                parent_edge[edge.target] = edge
                heapq.heappush(heap, (candidate, edge.target))

    if destination not in settled:
        raise NoPathError(f"no path from {source} to {destination}")

    edge_ids: list[int] = []
    vertex = destination
    while vertex != source:
        edge = parent_edge[vertex]
        edge_ids.append(edge.edge_id)
        vertex = edge.source
    edge_ids.reverse()
    return network.path_from_edge_ids(edge_ids), best[destination]


def shortest_path_cost(
    network: RoadNetwork,
    source: int,
    destination: int,
    edge_cost: EdgeCostFunction,
) -> float:
    """The least cost from ``source`` to ``destination`` (without materialising the path)."""
    costs = single_source_costs(network, source, edge_cost, targets={destination})
    if destination not in costs:
        raise NoPathError(f"no path from {source} to {destination}")
    return costs[destination]
