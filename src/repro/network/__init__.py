"""Road-network structures, generators, serialisation and statistics."""

from repro.network.generators import GridCityConfig, generate_grid_city
from repro.network.io import load_network, network_from_dict, network_to_dict, save_network
from repro.network.road_network import RoadNetwork, RoadSegment, Vertex
from repro.network.statistics import NetworkStatistics, compute_statistics

__all__ = [
    "RoadNetwork",
    "RoadSegment",
    "Vertex",
    "GridCityConfig",
    "generate_grid_city",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "NetworkStatistics",
    "compute_statistics",
]
