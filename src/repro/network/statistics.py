"""Descriptive statistics of road networks and trajectory sets (Table 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network.road_network import RoadNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for type checkers only
    from repro.trajectories.model import Trajectory

__all__ = ["NetworkStatistics", "compute_statistics"]


@dataclass(frozen=True)
class NetworkStatistics:
    """The per-dataset statistics the paper reports in Table 7."""

    name: str
    num_vertices: int
    num_edges: int
    avg_vertex_degree: float
    avg_edge_length: float
    num_trajectories: int
    avg_vertices_per_trajectory: float
    edge_coverage: float

    def as_rows(self) -> list[tuple[str, str]]:
        """Rows in the same order as Table 7 (plus edge coverage, quoted in the text)."""
        return [
            ("Number of vertices", f"{self.num_vertices:,}"),
            ("Number of edges", f"{self.num_edges:,}"),
            ("AVG vertex degree", f"{self.avg_vertex_degree:.2f}"),
            ("AVG edge length (m)", f"{self.avg_edge_length:.2f}"),
            ("Number of traj.", f"{self.num_trajectories:,}"),
            ("AVG number of vertices per traj.", f"{self.avg_vertices_per_trajectory:.2f}"),
            ("Edge coverage by traj.", f"{self.edge_coverage:.1%}"),
        ]


def compute_statistics(
    network: RoadNetwork,
    trajectories: "list[Trajectory] | None" = None,
    *,
    name: str | None = None,
) -> NetworkStatistics:
    """Compute Table 7-style statistics for a network and optional trajectory set.

    The average vertex degree follows the paper's convention of counting
    outgoing edges per vertex (a two-way street contributes one outgoing edge
    at each endpoint).
    """
    num_vertices = network.num_vertices
    num_edges = network.num_edges
    avg_degree = num_edges / num_vertices if num_vertices else 0.0
    avg_length = (
        sum(edge.length for edge in network.edges()) / num_edges if num_edges else 0.0
    )

    trajectories = trajectories or []
    covered_edges: set[int] = set()
    total_vertices = 0
    for trajectory in trajectories:
        covered_edges.update(trajectory.path.edges)
        total_vertices += len(trajectory.path.vertices)
    avg_traj_vertices = total_vertices / len(trajectories) if trajectories else 0.0
    coverage = len(covered_edges) / num_edges if num_edges else 0.0

    return NetworkStatistics(
        name=name or network.name,
        num_vertices=num_vertices,
        num_edges=num_edges,
        avg_vertex_degree=avg_degree,
        avg_edge_length=avg_length,
        num_trajectories=len(trajectories),
        avg_vertices_per_trajectory=avg_traj_vertices,
        edge_coverage=coverage,
    )
