"""Allow ``python -m repro`` to invoke the command-line interface."""

import sys

from repro.cli import main

sys.exit(main())
