"""Persistence of offline artefacts: the routable index and pre-computed heuristics."""

from repro.persistence.codecs import (
    distribution_from_dict,
    distribution_to_dict,
    joint_from_dict,
    joint_to_dict,
)
from repro.persistence.heuristics import (
    binary_heuristic_from_dict,
    binary_heuristic_to_dict,
    budget_heuristic_from_dict,
    budget_heuristic_to_dict,
    heuristic_table_from_dict,
    heuristic_table_to_dict,
    load_heuristic_bundle,
    load_heuristic_table,
    save_heuristic_bundle,
    save_heuristic_table,
)
from repro.persistence.index import index_from_dict, index_to_dict, load_index, save_index

__all__ = [
    "distribution_to_dict",
    "distribution_from_dict",
    "joint_to_dict",
    "joint_from_dict",
    "index_to_dict",
    "index_from_dict",
    "save_index",
    "load_index",
    "binary_heuristic_to_dict",
    "binary_heuristic_from_dict",
    "budget_heuristic_to_dict",
    "budget_heuristic_from_dict",
    "heuristic_table_to_dict",
    "heuristic_table_from_dict",
    "save_heuristic_table",
    "load_heuristic_table",
    "save_heuristic_bundle",
    "load_heuristic_bundle",
]
