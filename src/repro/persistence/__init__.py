"""Persistence of offline artefacts: the routable index, pre-computed heuristics,
and the content-addressed artifact store that bundles them for deployments."""

from repro.persistence.codecs import (
    distribution_from_dict,
    distribution_to_dict,
    joint_from_dict,
    joint_to_dict,
    require_format_version,
)
from repro.persistence.heuristics import (
    binary_heuristic_from_dict,
    binary_heuristic_to_dict,
    budget_heuristic_from_dict,
    budget_heuristic_to_dict,
    heuristic_table_from_dict,
    heuristic_table_to_dict,
    load_heuristic_bundle,
    load_heuristic_table,
    save_heuristic_bundle,
    save_heuristic_table,
)
from repro.persistence.heuristics import (
    heuristic_bundle_entries,
    heuristic_bundle_payload,
)
from repro.persistence.index import index_from_dict, index_to_dict, load_index, save_index
from repro.persistence.store import ArtifactEntry, ArtifactManifest, ArtifactStore

__all__ = [
    "require_format_version",
    "ArtifactStore",
    "ArtifactManifest",
    "ArtifactEntry",
    "heuristic_bundle_payload",
    "heuristic_bundle_entries",
    "distribution_to_dict",
    "distribution_from_dict",
    "joint_to_dict",
    "joint_from_dict",
    "index_to_dict",
    "index_from_dict",
    "save_index",
    "load_index",
    "binary_heuristic_to_dict",
    "binary_heuristic_from_dict",
    "budget_heuristic_to_dict",
    "budget_heuristic_from_dict",
    "heuristic_table_to_dict",
    "heuristic_table_from_dict",
    "save_heuristic_table",
    "load_heuristic_table",
    "save_heuristic_bundle",
    "load_heuristic_bundle",
]
