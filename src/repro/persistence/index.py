"""Persistence of the routable index: PACE graph and V-paths.

A deployment builds the index offline (T-path mining on the trajectory
warehouse, V-path closure) and ships it to the routing service.  This module
serialises exactly that artefact:

* the road network (delegated to :mod:`repro.network.io` for the v1 format),
* the edge weight function ``W`` on ``E``,
* every T-path with its joint distribution, and
* every V-path with its pre-assembled total-cost distribution.

Two formats coexist:

* **format_version 1** — a single JSON object (human-inspectable, diff-able;
  the original format, still fully readable and writable), and
* **format_version 2** — a columnar binary document built on
  :func:`repro.persistence.codecs.encode_column_document`: vertices, edges,
  weights, T-paths and V-paths become flat little-endian columns (ragged
  structures carry an explicit per-entry count column).  At city scale the
  column document is several times smaller than the JSON and parses without
  building millions of intermediate Python objects, which is what makes
  country-scale stores practical.

Both directions round-trip the graph's *content fingerprint* bit for bit —
no float renormalisation anywhere (see
:func:`repro.persistence.codecs.distribution_from_sequences`).
:func:`save_index` picks the format explicitly; :func:`load_index` sniffs the
leading bytes.
"""

from __future__ import annotations

from pathlib import Path as FilePath

import numpy as np

from repro.core.edge_graph import EdgeGraph
from repro.core.elements import ElementKind, WeightedElement
from repro.core.errors import DataError
from repro.core.pace_graph import PaceGraph
from repro.network.io import network_from_dict, network_to_dict
from repro.persistence.codecs import (
    COLUMN_MAGIC,
    ColumnDocumentReader,
    decode_column_document,
    split_ragged_column,
    distribution_from_dict,
    distribution_from_sequences,
    distribution_to_dict,
    encode_column_document,
    joint_from_dict,
    joint_from_sequences,
    joint_to_dict,
    open_column_document,
    require_format_version,
    strict_json_dump,
    strict_json_loads,
)
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = [
    "INDEX_FORMAT_V1",
    "INDEX_FORMAT_V2",
    "index_to_dict",
    "index_from_dict",
    "index_to_column_bytes",
    "index_from_column_bytes",
    "index_from_column_reader",
    "save_index",
    "load_index",
]

_FORMAT_VERSION = 1
#: The two supported index document formats: v1 JSON and v2 columnar binary.
INDEX_FORMAT_V1 = 1
INDEX_FORMAT_V2 = 2
_INDEX_KIND = "pace-index"


def index_to_dict(graph: PaceGraph | UpdatedPaceGraph) -> dict:
    """Serialise a PACE graph (optionally with its V-paths) to a JSON-ready dictionary."""
    if isinstance(graph, UpdatedPaceGraph):
        pace = graph.pace_graph
        vpaths = list(graph.vpaths())
    else:
        pace = graph
        vpaths = []
    return {
        "format_version": _FORMAT_VERSION,
        "tau": pace.tau,
        "network": network_to_dict(pace.network),
        "edge_weights": {
            str(edge_id): distribution_to_dict(distribution)
            for edge_id, distribution in pace.edge_graph.weights().items()
        },
        "tpaths": [
            {
                "edge_ids": list(tpath.path.edges),
                "support": tpath.support,
                "joint": joint_to_dict(tpath.joint),
            }
            for tpath in pace.tpaths()
        ],
        "vpaths": [
            {
                "edge_ids": list(vpath.path.edges),
                "distribution": distribution_to_dict(vpath.distribution),
            }
            for vpath in vpaths
        ],
    }


def index_from_dict(payload: dict) -> UpdatedPaceGraph:
    """Rebuild the routable index from :func:`index_to_dict` output.

    Always returns an :class:`~repro.vpaths.updated_graph.UpdatedPaceGraph`;
    when the document contains no V-paths the updated graph simply has none,
    and its ``pace_graph`` attribute gives the plain PACE view.
    """
    require_format_version(payload, expected=_FORMAT_VERSION, what="index document")
    try:
        network = network_from_dict(payload["network"])
        weights = {
            int(edge_id): distribution_from_dict(encoded)
            for edge_id, encoded in payload["edge_weights"].items()
        }
        edge_graph = EdgeGraph(network, weights)
        pace = PaceGraph(edge_graph, tau=payload["tau"])
        for entry in payload["tpaths"]:
            path = network.path_from_edge_ids(entry["edge_ids"])
            pace.add_tpath(path, joint_from_dict(entry["joint"]), support=entry.get("support", 0))
        vpaths: dict[tuple[int, ...], WeightedElement] = {}
        for entry in payload["vpaths"]:
            path = network.path_from_edge_ids(entry["edge_ids"])
            vpaths[path.edges] = WeightedElement(
                kind=ElementKind.VPATH,
                path=path,
                distribution=distribution_from_dict(entry["distribution"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        # ValueError: int() on a non-numeric edge id key must surface as a
        # malformed document, not escape as a bare builtin (data-error-taxonomy).
        raise DataError(f"malformed index payload, missing or invalid key {exc}") from exc
    return UpdatedPaceGraph(pace, vpaths)


# --------------------------------------------------------------------------- #
# Format-version 2: columnar binary
# --------------------------------------------------------------------------- #


def index_to_column_bytes(graph: PaceGraph | UpdatedPaceGraph) -> bytes:
    """Serialise a PACE graph (optionally with its V-paths) as a v2 column document.

    Ragged structures (edge weight supports, T-path edge lists, joint
    outcomes, V-path distributions) are flattened into one concatenated value
    column plus an aligned per-entry count column — the classic columnar
    encoding.  Float payloads are the graph's own float64 values, copied
    verbatim, so the decoded graph's content fingerprint equals the source's.
    """
    if isinstance(graph, UpdatedPaceGraph):
        pace = graph.pace_graph
        vpaths = list(graph.vpaths())
    else:
        pace = graph
        vpaths = []
    network = pace.network
    vertices = list(network.vertices())
    edges = list(network.edges())
    weights = pace.edge_graph.weights()
    weight_ids = list(weights)
    tpaths = list(pace.tpaths())

    columns: dict[str, np.ndarray] = {
        "vertex_id": np.array([v.vertex_id for v in vertices], dtype=np.int64),
        "vertex_x": np.array([v.x for v in vertices], dtype=float),
        "vertex_y": np.array([v.y for v in vertices], dtype=float),
        "edge_id": np.array([e.edge_id for e in edges], dtype=np.int64),
        "edge_source": np.array([e.source for e in edges], dtype=np.int64),
        "edge_target": np.array([e.target for e in edges], dtype=np.int64),
        "edge_length": np.array([e.length for e in edges], dtype=float),
        "edge_speed_limit": np.array([e.speed_limit for e in edges], dtype=float),
        "weight_edge_id": np.array(weight_ids, dtype=np.int64),
        "weight_count": np.array(
            [len(weights[edge_id].support) for edge_id in weight_ids], dtype=np.int64
        ),
        "weight_cost": np.concatenate(
            [np.asarray(weights[edge_id].support, dtype=float) for edge_id in weight_ids]
        )
        if weight_ids
        else np.array([], dtype=float),
        "weight_prob": np.concatenate(
            [np.asarray(weights[edge_id].probabilities, dtype=float) for edge_id in weight_ids]
        )
        if weight_ids
        else np.array([], dtype=float),
    }

    tpath_edge_ids: list[int] = []
    joint_edge_ids: list[int] = []
    outcome_costs: list[float] = []
    outcome_probs: list[float] = []
    tpath_edge_count: list[int] = []
    joint_edge_count: list[int] = []
    outcome_count: list[int] = []
    supports: list[int] = []
    for tpath in tpaths:
        path_edges = list(tpath.path.edges)
        tpath_edge_ids.extend(path_edges)
        tpath_edge_count.append(len(path_edges))
        supports.append(tpath.support)
        joint = tpath.joint
        joint_edge_ids.extend(joint.edge_ids)
        joint_edge_count.append(len(joint.edge_ids))
        items = list(joint.items())
        outcome_count.append(len(items))
        for costs, probability in items:
            outcome_costs.extend(costs)
            outcome_probs.append(probability)
    columns.update(
        tpath_edge_count=np.array(tpath_edge_count, dtype=np.int64),
        tpath_edge_id=np.array(tpath_edge_ids, dtype=np.int64),
        tpath_support=np.array(supports, dtype=np.int64),
        tpath_joint_edge_count=np.array(joint_edge_count, dtype=np.int64),
        tpath_joint_edge_id=np.array(joint_edge_ids, dtype=np.int64),
        tpath_outcome_count=np.array(outcome_count, dtype=np.int64),
        tpath_outcome_cost=np.array(outcome_costs, dtype=float),
        tpath_outcome_prob=np.array(outcome_probs, dtype=float),
    )

    vpath_edge_ids: list[int] = []
    vpath_edge_count: list[int] = []
    vpath_cost_count: list[int] = []
    vpath_costs: list[float] = []
    vpath_probs: list[float] = []
    for vpath in vpaths:
        path_edges = list(vpath.path.edges)
        vpath_edge_ids.extend(path_edges)
        vpath_edge_count.append(len(path_edges))
        distribution = vpath.distribution
        vpath_cost_count.append(len(distribution.support))
        vpath_costs.extend(distribution.support)
        vpath_probs.extend(distribution.probabilities)
    columns.update(
        vpath_edge_count=np.array(vpath_edge_count, dtype=np.int64),
        vpath_edge_id=np.array(vpath_edge_ids, dtype=np.int64),
        vpath_cost_count=np.array(vpath_cost_count, dtype=np.int64),
        vpath_cost=np.array(vpath_costs, dtype=float),
        vpath_prob=np.array(vpath_probs, dtype=float),
    )

    meta = {
        "format_version": INDEX_FORMAT_V2,
        "kind": _INDEX_KIND,
        "tau": pace.tau,
        "network_name": network.name,
    }
    return encode_column_document(meta, columns)


def index_from_column_bytes(data: bytes) -> UpdatedPaceGraph:
    """Rebuild the routable index from :func:`index_to_column_bytes` output."""
    meta, columns = decode_column_document(data, what="index column document")
    return _index_from_meta_columns(meta, columns)


def index_from_column_reader(reader: ColumnDocumentReader) -> UpdatedPaceGraph:
    """Rebuild the routable index from an open streaming reader.

    The zero-copy boot path: columns are read-only views over the reader's
    map (digest-verified as they are touched), so the only allocations are
    the graph objects themselves — the document's bytes are never held as a
    second copy alongside them.
    """
    return _index_from_meta_columns(reader.meta, reader.columns())


def _index_from_meta_columns(meta: dict, columns: dict[str, np.ndarray]) -> UpdatedPaceGraph:
    if meta.get("kind") != _INDEX_KIND:
        raise DataError(f"not a columnar index document (kind {meta.get('kind')!r})")
    require_format_version(meta, expected=INDEX_FORMAT_V2, what="columnar index")
    try:
        from repro.network.road_network import RoadNetwork

        network = RoadNetwork(name=meta.get("network_name", "road-network"))
        for vertex_id, x, y in zip(
            columns["vertex_id"].tolist(), columns["vertex_x"].tolist(), columns["vertex_y"].tolist()
        ):
            network.add_vertex(vertex_id, x, y)
        for edge_id, source, target, length, speed in zip(
            columns["edge_id"].tolist(),
            columns["edge_source"].tolist(),
            columns["edge_target"].tolist(),
            columns["edge_length"].tolist(),
            columns["edge_speed_limit"].tolist(),
        ):
            network.add_edge(source, target, edge_id=edge_id, length=length, speed_limit=speed)

        weight_costs = split_ragged_column(
            columns["weight_cost"], columns["weight_count"], what="weight_cost"
        )
        weight_probs = split_ragged_column(
            columns["weight_prob"], columns["weight_count"], what="weight_prob"
        )
        weights = {
            int(edge_id): distribution_from_sequences(costs, probs)
            for edge_id, costs, probs in zip(
                columns["weight_edge_id"].tolist(), weight_costs, weight_probs
            )
        }
        edge_graph = EdgeGraph(network, weights)
        pace = PaceGraph(edge_graph, tau=meta["tau"])

        tpath_edges = split_ragged_column(
            columns["tpath_edge_id"], columns["tpath_edge_count"], what="tpath_edge_id"
        )
        joint_edges = split_ragged_column(
            columns["tpath_joint_edge_id"], columns["tpath_joint_edge_count"],
            what="tpath_joint_edge_id",
        )
        outcome_probs = split_ragged_column(
            columns["tpath_outcome_prob"], columns["tpath_outcome_count"],
            what="tpath_outcome_prob",
        )
        outcome_costs = split_ragged_column(
            columns["tpath_outcome_cost"],
            columns["tpath_outcome_count"] * columns["tpath_joint_edge_count"],
            what="tpath_outcome_cost",
        )
        for edges, support, joint_ids, probs, costs in zip(
            tpath_edges, columns["tpath_support"].tolist(), joint_edges,
            outcome_probs, outcome_costs,
        ):
            width = len(joint_ids)
            items = [
                (tuple(costs[i * width : (i + 1) * width]), probability)
                for i, probability in enumerate(probs)
            ]
            path = network.path_from_edge_ids(edges)
            pace.add_tpath(path, joint_from_sequences(joint_ids, items), support=support)

        vpath_edges = split_ragged_column(
            columns["vpath_edge_id"], columns["vpath_edge_count"], what="vpath_edge_id"
        )
        vpath_costs = split_ragged_column(
            columns["vpath_cost"], columns["vpath_cost_count"], what="vpath_cost"
        )
        vpath_probs = split_ragged_column(
            columns["vpath_prob"], columns["vpath_cost_count"], what="vpath_prob"
        )
        vpaths: dict[tuple[int, ...], WeightedElement] = {}
        for edges, costs, probs in zip(vpath_edges, vpath_costs, vpath_probs):
            path = network.path_from_edge_ids(edges)
            vpaths[path.edges] = WeightedElement(
                kind=ElementKind.VPATH,
                path=path,
                distribution=distribution_from_sequences(costs, probs),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(
            f"malformed index column document, missing or invalid column/metadata field: {exc}"
        ) from exc
    return UpdatedPaceGraph(pace, vpaths)


def save_index(
    graph: PaceGraph | UpdatedPaceGraph,
    path: str | FilePath,
    *,
    format_version: int = INDEX_FORMAT_V1,
) -> None:
    """Write the index to disk in the requested format (v1 JSON or v2 columnar)."""
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if format_version == INDEX_FORMAT_V2:
        path.write_bytes(index_to_column_bytes(graph))
        return
    if format_version != INDEX_FORMAT_V1:
        raise DataError(
            f"unsupported index format version {format_version} "
            f"(this writer supports {INDEX_FORMAT_V1} and {INDEX_FORMAT_V2})"
        )
    with path.open("w", encoding="utf-8") as handle:
        strict_json_dump(index_to_dict(graph), handle)


def load_index(path: str | FilePath) -> UpdatedPaceGraph:
    """Read an index written by :func:`save_index`, sniffing v1 JSON vs v2 binary.

    v2 column documents stream through :class:`ColumnDocumentReader` (mmap
    views, no whole-file read); v1 JSON documents release their raw bytes
    before the graph is materialised, so neither format holds file bytes and
    decoded objects concurrently.
    """
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"index file not found: {path}")
    with path.open("rb") as handle:
        head = handle.read(len(COLUMN_MAGIC))  # bounded sniff, not a whole-file read
    if head == COLUMN_MAGIC:
        with open_column_document(path, what=f"index file {path}") as reader:
            return index_from_column_reader(reader)
    data = path.read_bytes()  # repro: ignore[residency-discipline] — v1 JSON document
    payload = strict_json_loads(data, what=f"index file {path} (not a column document)")
    del data  # the parsed payload supersedes the raw bytes; drop them first
    return index_from_dict(payload)
