"""Persistence of the routable index: PACE graph and V-paths.

A deployment builds the index offline (T-path mining on the trajectory
warehouse, V-path closure) and ships it to the routing service.  This module
serialises exactly that artefact:

* the road network (delegated to :mod:`repro.network.io`),
* the edge weight function ``W`` on ``E``,
* every T-path with its joint distribution, and
* every V-path with its pre-assembled total-cost distribution.

The document is a single JSON object; :func:`save_index` / :func:`load_index`
read and write it on disk.
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath

from repro.core.edge_graph import EdgeGraph
from repro.core.elements import ElementKind, WeightedElement
from repro.core.errors import DataError
from repro.core.pace_graph import PaceGraph
from repro.network.io import network_from_dict, network_to_dict
from repro.persistence.codecs import (
    distribution_from_dict,
    distribution_to_dict,
    joint_from_dict,
    joint_to_dict,
    require_format_version,
)
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = ["index_to_dict", "index_from_dict", "save_index", "load_index"]

_FORMAT_VERSION = 1


def index_to_dict(graph: PaceGraph | UpdatedPaceGraph) -> dict:
    """Serialise a PACE graph (optionally with its V-paths) to a JSON-ready dictionary."""
    if isinstance(graph, UpdatedPaceGraph):
        pace = graph.pace_graph
        vpaths = list(graph.vpaths())
    else:
        pace = graph
        vpaths = []
    return {
        "format_version": _FORMAT_VERSION,
        "tau": pace.tau,
        "network": network_to_dict(pace.network),
        "edge_weights": {
            str(edge_id): distribution_to_dict(distribution)
            for edge_id, distribution in pace.edge_graph.weights().items()
        },
        "tpaths": [
            {
                "edge_ids": list(tpath.path.edges),
                "support": tpath.support,
                "joint": joint_to_dict(tpath.joint),
            }
            for tpath in pace.tpaths()
        ],
        "vpaths": [
            {
                "edge_ids": list(vpath.path.edges),
                "distribution": distribution_to_dict(vpath.distribution),
            }
            for vpath in vpaths
        ],
    }


def index_from_dict(payload: dict) -> UpdatedPaceGraph:
    """Rebuild the routable index from :func:`index_to_dict` output.

    Always returns an :class:`~repro.vpaths.updated_graph.UpdatedPaceGraph`;
    when the document contains no V-paths the updated graph simply has none,
    and its ``pace_graph`` attribute gives the plain PACE view.
    """
    require_format_version(payload, expected=_FORMAT_VERSION, what="index document")
    try:
        network = network_from_dict(payload["network"])
        weights = {
            int(edge_id): distribution_from_dict(encoded)
            for edge_id, encoded in payload["edge_weights"].items()
        }
        edge_graph = EdgeGraph(network, weights)
        pace = PaceGraph(edge_graph, tau=payload["tau"])
        for entry in payload["tpaths"]:
            path = network.path_from_edge_ids(entry["edge_ids"])
            pace.add_tpath(path, joint_from_dict(entry["joint"]), support=entry.get("support", 0))
        vpaths = {}
        for entry in payload["vpaths"]:
            path = network.path_from_edge_ids(entry["edge_ids"])
            vpaths[path.edges] = WeightedElement(
                kind=ElementKind.VPATH,
                path=path,
                distribution=distribution_from_dict(entry["distribution"]),
            )
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed index payload, missing key {exc}") from exc
    return UpdatedPaceGraph(pace, vpaths)


def save_index(graph: PaceGraph | UpdatedPaceGraph, path: str | FilePath) -> None:
    """Write the index to a JSON file."""
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(index_to_dict(graph), handle)


def load_index(path: str | FilePath) -> UpdatedPaceGraph:
    """Read an index written by :func:`save_index`."""
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"index file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return index_from_dict(json.load(handle))
