"""Persistence of pre-computed heuristics.

The heuristics are destination-specific and, at city scale, constitute the
bulk of the offline investment the paper trades for fast online routing
(Tables 8–10).  This module serialises them so a routing service can load the
tables for its hot destinations instead of rebuilding them:

* binary heuristics — the per-vertex ``getMin`` map,
* budget-specific heuristics — the compressed heuristic table (``l``/``s``
  bounds and the cells in between) plus the ``getMin`` map used for budget
  pruning, and
* heuristic *bundles* — a list of tagged heuristic payloads covering many
  destinations, which is what :meth:`repro.routing.engine.RoutingEngine.save_heuristics`
  writes and :meth:`~repro.routing.engine.RoutingEngine.prewarm` reads.

The v1 files are strict JSON: unreachable vertices carry ``getMin = inf``,
which standard JSON cannot represent, so infinities are stored as the string
sentinel ``"inf"`` and every writer passes ``allow_nan=False`` (the legacy
non-standard ``Infinity`` token is still accepted on load).

**Format-version 2** serialises each tagged bundle entry as its *own*
columnar binary document (:func:`encode_heuristic_entry` /
:func:`decode_heuristic_entry`): a budget table's value band becomes one
concatenated float64 column plus per-row ``first_index``/count columns, the
``getMin`` maps become vertex/value columns (binary floats represent ``inf``
natively — no sentinel needed).  Entries carry a stable
:func:`heuristic_entry_key`, which is what lets the v2
:class:`~repro.persistence.store.ArtifactStore` address, append and replace
tables *individually* instead of rewriting one monolithic bundle on every
``prewarm --artifacts``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from pathlib import Path as FilePath

import numpy as np

from repro.core.errors import DataError
from repro.persistence.codecs import (
    ColumnDocumentReader,
    decode_column_document,
    encode_column_document,
    require_format_version,
    split_ragged_column,
    strict_json_dump,
    strict_json_loads,
)
from repro.heuristics.binary import BinaryHeuristic
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.heuristics.tables import HeuristicRow, HeuristicTable

__all__ = [
    "binary_heuristic_to_dict",
    "binary_heuristic_from_dict",
    "heuristic_table_to_dict",
    "heuristic_table_from_dict",
    "budget_heuristic_to_dict",
    "budget_heuristic_from_dict",
    "save_heuristic_table",
    "load_heuristic_table",
    "save_heuristic_bundle",
    "load_heuristic_bundle",
    "heuristic_bundle_payload",
    "heuristic_bundle_entries",
    "HEURISTIC_ENTRY_FORMAT_V2",
    "heuristic_entry_key",
    "encode_heuristic_entry",
    "decode_heuristic_entry",
    "heuristic_entry_from_reader",
]

_FORMAT_VERSION = 1
_BUNDLE_FORMAT_VERSION = 1
#: Format version of the per-entry columnar heuristic documents.
HEURISTIC_ENTRY_FORMAT_V2 = 2
_ENTRY_KIND = "heuristic-entry"

#: JSON-safe stand-in for ``float("inf")`` getMin values (unreachable vertices).
_INFINITY_SENTINEL = "inf"


def _encode_min_cost(value: float) -> float | str:
    return value if math.isfinite(value) else _INFINITY_SENTINEL


def binary_heuristic_to_dict(heuristic: BinaryHeuristic) -> dict:
    """Serialise a binary heuristic (its destination and per-vertex getMin values).

    Infinite ``getMin`` values (vertices that cannot reach the destination)
    are stored as the string sentinel ``"inf"`` so the document stays strict
    JSON; :func:`binary_heuristic_from_dict` converts them back.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "destination": heuristic.destination,
        "min_costs": {
            str(vertex): _encode_min_cost(value)
            for vertex, value in heuristic.min_cost_map().items()
        },
    }


def binary_heuristic_from_dict(payload: dict) -> BinaryHeuristic:
    """Rebuild a binary heuristic from :func:`binary_heuristic_to_dict` output.

    Accepts the ``"inf"`` sentinel (and the legacy non-standard ``Infinity``
    token, which Python's json module used to emit) for unreachable vertices.
    """
    require_format_version(payload, expected=_FORMAT_VERSION, what="binary heuristic")
    try:
        destination = payload["destination"]
        # float() parses numbers as well as the "inf" / "Infinity" sentinels.
        min_costs = {int(vertex): float(value) for vertex, value in payload["min_costs"].items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed binary heuristic payload: {exc}") from exc
    if any(math.isnan(value) for value in min_costs.values()):
        raise DataError("malformed binary heuristic payload: NaN getMin value")
    return BinaryHeuristic(destination, min_costs)


def heuristic_table_to_dict(source: HeuristicTable | BudgetSpecificHeuristic) -> dict:
    """Serialise a heuristic table (accepts the table or the full heuristic)."""
    table = source.table if isinstance(source, BudgetSpecificHeuristic) else source
    return {
        "format_version": _FORMAT_VERSION,
        "destination": table.destination,
        "delta": table.delta,
        "eta": table.eta,
        "rows": {
            str(vertex): {"first_index": row.first_index, "values": row.values.tolist()}
            for vertex, row in table.rows.items()
        },
    }


def heuristic_table_from_dict(payload: dict) -> HeuristicTable:
    """Rebuild a heuristic table from :func:`heuristic_table_to_dict` output."""
    require_format_version(payload, expected=_FORMAT_VERSION, what="heuristic table")
    try:
        table = HeuristicTable(
            destination=payload["destination"], delta=payload["delta"], eta=payload["eta"]
        )
        for vertex, row in payload["rows"].items():
            table.set_row(
                int(vertex),
                HeuristicRow(first_index=row["first_index"], values=tuple(row["values"])),
            )
    except (KeyError, TypeError, ValueError) as exc:
        # ValueError: int() on a non-numeric vertex key is a malformed
        # document, not a programming error (data-error-taxonomy).
        raise DataError(f"malformed heuristic table payload: {exc}") from exc
    return table


def budget_heuristic_to_dict(heuristic: BudgetSpecificHeuristic) -> dict:
    """Serialise a budget-specific heuristic: its table plus the getMin map.

    The build's ``grid_rounding`` is recorded because it decides
    admissibility: ``"floor"``-built cells may slightly under-estimate, so a
    loader that needs admissible bounds must be able to tell the modes apart.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "grid_rounding": heuristic.grid_rounding,
        "table": heuristic_table_to_dict(heuristic.table),
        "binary": binary_heuristic_to_dict(heuristic.binary),
    }


def budget_heuristic_from_dict(payload: dict) -> BudgetSpecificHeuristic:
    """Rebuild a servable budget-specific heuristic without re-running Eq. 5."""
    require_format_version(payload, expected=_FORMAT_VERSION, what="budget heuristic")
    try:
        table = heuristic_table_from_dict(payload["table"])
        binary = binary_heuristic_from_dict(payload["binary"])
        grid_rounding = payload.get("grid_rounding", "ceil")
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed budget heuristic payload: {exc}") from exc
    config = BudgetHeuristicConfig(
        delta=table.delta, max_budget=table.max_budget, grid_rounding=grid_rounding
    )
    return BudgetSpecificHeuristic.from_table(table, binary=binary, config=config)


def save_heuristic_table(
    source: HeuristicTable | BudgetSpecificHeuristic, path: str | FilePath
) -> None:
    """Write a heuristic table to a JSON file."""
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        strict_json_dump(heuristic_table_to_dict(source), handle)


def load_heuristic_table(path: str | FilePath) -> HeuristicTable:
    """Read a heuristic table written by :func:`save_heuristic_table`."""
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"heuristic table file not found: {path}")
    payload = strict_json_loads(
        path.read_text(encoding="utf-8"),  # repro: ignore[residency-discipline] — v1 JSON table
        what=f"heuristic table file {path}",
        allow_legacy_infinity=True,
    )
    return heuristic_table_from_dict(payload)


def save_heuristic_bundle(entries: Sequence[dict], path: str | FilePath) -> None:
    """Write a list of tagged heuristic entries as one strict-JSON document.

    Each entry is a dict with a ``kind`` tag (``"binary"`` or ``"budget"``), a
    ``heuristic`` payload produced by the codecs above, and whatever routing
    metadata the writer needs to key its cache (variant, δ, graph flavour,
    and — since the cache became content-addressed — the
    ``graph_fingerprint`` that makes the bundle loadable by any process over
    structurally identical graphs).  The document is intentionally a dumb
    envelope: the :class:`~repro.routing.engine.RoutingEngine` decides what
    the entries mean.
    """
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        strict_json_dump(heuristic_bundle_payload(entries), handle)


def heuristic_bundle_payload(entries: Sequence[dict]) -> dict:
    """The bundle document for ``entries`` (what :func:`save_heuristic_bundle` writes)."""
    return {
        "format_version": _BUNDLE_FORMAT_VERSION,
        "kind": "heuristic-bundle",
        "entries": list(entries),
    }


def heuristic_bundle_entries(payload: dict) -> list[dict]:
    """Validate a bundle document's envelope and return its entries."""
    try:
        if payload["kind"] != "heuristic-bundle":
            raise DataError(f"not a heuristic bundle document (kind {payload['kind']!r})")
        require_format_version(
            payload, expected=_BUNDLE_FORMAT_VERSION, what="heuristic bundle"
        )
        entries = payload["entries"]
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed heuristic bundle: {exc}") from exc
    if not isinstance(entries, list):
        raise DataError("malformed heuristic bundle: entries must be a list")
    return entries


def load_heuristic_bundle(path: str | FilePath) -> list[dict]:
    """Read the entries of a bundle written by :func:`save_heuristic_bundle`."""
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"heuristic bundle file not found: {path}")
    payload = strict_json_loads(
        path.read_text(encoding="utf-8"),  # repro: ignore[residency-discipline] — v1 JSON bundle
        what=f"heuristic bundle file {path}",
        allow_legacy_infinity=True,
    )
    try:
        return heuristic_bundle_entries(payload)
    except DataError as exc:
        raise DataError(f"{exc} ({path})") from exc


# --------------------------------------------------------------------------- #
# Format-version 2: per-entry columnar documents
# --------------------------------------------------------------------------- #


def heuristic_entry_key(entry: dict) -> str:
    """A stable, filename-safe identity for one tagged bundle entry.

    Two entries with the same key describe the *same* heuristic slot (same
    kind, variant/δ, graph flavour and destination) — possibly with different
    values after a rebuild.  The v2 store keys its per-entry artifacts by
    this, so re-saving a store replaces exactly the slots whose tables
    changed and appends the new ones.
    """
    try:
        kind = entry["kind"]
        destination = int(entry["destination"])
        if kind == "binary":
            return f"binary-{entry['variant']}-{destination}"
        if kind == "budget":
            delta = float(entry["delta"])
            flavour = entry.get("graph", "pace")
            # repr() keeps fractional deltas loss-free ('0.1', '1e-05'), and
            # produces filename-safe ASCII for any float.
            return f"budget-{delta!r}-{flavour}-{destination}"
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed heuristic bundle entry: {exc}") from exc
    raise DataError(f"unknown heuristic bundle entry kind {kind!r}")


def _min_cost_columns(payload: dict, prefix: str) -> dict[str, np.ndarray]:
    """Vertex/getMin columns of a binary-heuristic payload (inf stays inf)."""
    items = sorted((int(vertex), float(value)) for vertex, value in payload["min_costs"].items())
    return {
        f"{prefix}_vertex": np.array([vertex for vertex, _ in items], dtype=np.int64),
        f"{prefix}_min_cost": np.array([value for _, value in items], dtype=float),
    }


def encode_heuristic_entry(entry: dict) -> bytes:
    """Serialise one tagged bundle entry as a self-contained column document.

    The tag fields (kind, variant/δ, graph flavour, destination, graph
    fingerprint and signature) travel in the JSON metadata header; the value
    payloads become columns — ``getMin`` maps as vertex/value pairs, a budget
    table's stored band as one concatenated cell column with per-row
    ``first_index`` and cell counts.  Cells are copied verbatim (float64 in,
    float64 out): decoding yields exactly the floats the builder produced.
    """
    tags = {name: value for name, value in entry.items() if name != "heuristic"}
    meta = {
        "format_version": HEURISTIC_ENTRY_FORMAT_V2,
        "kind": _ENTRY_KIND,
        "tags": tags,
    }
    try:
        payload = entry["heuristic"]
        if entry["kind"] == "binary":
            meta["destination"] = payload["destination"]
            columns = _min_cost_columns(payload, "binary")
        elif entry["kind"] == "budget":
            table = payload["table"]
            meta["grid_rounding"] = payload.get("grid_rounding", "ceil")
            meta["table"] = {
                "destination": table["destination"],
                "delta": table["delta"],
                "eta": table["eta"],
            }
            rows = sorted(
                (int(vertex), row["first_index"], row["values"])
                for vertex, row in table["rows"].items()
            )
            columns = {
                "row_vertex": np.array([vertex for vertex, _, _ in rows], dtype=np.int64),
                "row_first_index": np.array([first for _, first, _ in rows], dtype=np.int64),
                "row_cell_count": np.array([len(cells) for _, _, cells in rows], dtype=np.int64),
                "row_cell": np.concatenate(
                    [np.asarray(cells, dtype=float) for _, _, cells in rows]
                )
                if rows
                else np.array([], dtype=float),
                **_min_cost_columns(payload["binary"], "binary"),
            }
            meta["binary_destination"] = payload["binary"]["destination"]
        else:
            raise DataError(f"unknown heuristic bundle entry kind {entry['kind']!r}")
    except (KeyError, TypeError, ValueError) as exc:
        # ValueError: int() on a non-numeric row vertex is a malformed
        # entry, not a programming error (data-error-taxonomy).
        raise DataError(f"malformed heuristic bundle entry: {exc}") from exc
    return encode_column_document(meta, columns)


def _min_costs_from_columns(columns: dict, prefix: str) -> dict[str, float]:
    vertices = columns[f"{prefix}_vertex"].tolist()
    values = columns[f"{prefix}_min_cost"].tolist()
    return {str(vertex): value for vertex, value in zip(vertices, values)}


def decode_heuristic_entry(data: bytes) -> dict:
    """Decode :func:`encode_heuristic_entry` output back into a tagged entry.

    The result has exactly the v1 bundle-entry shape (tags plus a
    ``"heuristic"`` payload dictionary), so
    :meth:`repro.routing.engine.RoutingEngine` validates and loads v1 and v2
    entries through one code path.
    """
    meta, columns = decode_column_document(data, what="heuristic entry document")
    return _entry_from_meta_columns(meta, columns)


def heuristic_entry_from_reader(reader: ColumnDocumentReader) -> dict:
    """Decode one tagged entry from an open streaming reader (zero-copy fault path).

    Semantically identical to :func:`decode_heuristic_entry`, but the columns
    are digest-verified mmap views rather than copies of an in-memory blob —
    this is what :meth:`repro.persistence.store.ArtifactStore.open_heuristics`
    uses to fault a single destination's table without reading the file into
    a bytes object first.
    """
    return _entry_from_meta_columns(reader.meta, reader.columns())


def _entry_from_meta_columns(meta: dict, columns: dict[str, np.ndarray]) -> dict:
    if meta.get("kind") != _ENTRY_KIND:
        raise DataError(f"not a heuristic entry document (kind {meta.get('kind')!r})")
    require_format_version(meta, expected=HEURISTIC_ENTRY_FORMAT_V2, what="heuristic entry")
    try:
        entry = dict(meta["tags"])
        if entry["kind"] == "binary":
            entry["heuristic"] = {
                "format_version": _FORMAT_VERSION,
                "destination": meta["destination"],
                "min_costs": _min_costs_from_columns(columns, "binary"),
            }
        elif entry["kind"] == "budget":
            cell_lists = split_ragged_column(
                columns["row_cell"], columns["row_cell_count"], what="row_cell"
            )
            rows = {
                str(vertex): {"first_index": first, "values": cells}
                for vertex, first, cells in zip(
                    columns["row_vertex"].tolist(),
                    columns["row_first_index"].tolist(),
                    cell_lists,
                )
            }
            entry["heuristic"] = {
                "format_version": _FORMAT_VERSION,
                "grid_rounding": meta["grid_rounding"],
                "table": {
                    "format_version": _FORMAT_VERSION,
                    "destination": meta["table"]["destination"],
                    "delta": meta["table"]["delta"],
                    "eta": meta["table"]["eta"],
                    "rows": rows,
                },
                "binary": {
                    "format_version": _FORMAT_VERSION,
                    "destination": meta["binary_destination"],
                    "min_costs": _min_costs_from_columns(columns, "binary"),
                },
            }
        else:
            raise DataError(f"unknown heuristic entry kind {entry['kind']!r}")
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed heuristic entry document: {exc}") from exc
    return entry
