"""Persistence of pre-computed heuristics.

The heuristics are destination-specific and, at city scale, constitute the
bulk of the offline investment the paper trades for fast online routing
(Tables 8–10).  This module serialises them so a routing service can load the
tables for its hot destinations instead of rebuilding them:

* binary heuristics — the per-vertex ``getMin`` map, and
* budget-specific heuristics — the compressed heuristic table (``l``/``s``
  bounds and the cells in between) plus the ``getMin`` map used for budget
  pruning.
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath

from repro.core.errors import DataError
from repro.heuristics.binary import BinaryHeuristic
from repro.heuristics.budget import BudgetSpecificHeuristic
from repro.heuristics.tables import HeuristicRow, HeuristicTable

__all__ = [
    "binary_heuristic_to_dict",
    "binary_heuristic_from_dict",
    "heuristic_table_to_dict",
    "heuristic_table_from_dict",
    "save_heuristic_table",
    "load_heuristic_table",
]

_FORMAT_VERSION = 1


def binary_heuristic_to_dict(heuristic: BinaryHeuristic) -> dict:
    """Serialise a binary heuristic (its destination and per-vertex getMin values)."""
    return {
        "format_version": _FORMAT_VERSION,
        "destination": heuristic.destination,
        "min_costs": {str(vertex): value for vertex, value in heuristic.min_cost_map().items()},
    }


def binary_heuristic_from_dict(payload: dict) -> BinaryHeuristic:
    """Rebuild a binary heuristic from :func:`binary_heuristic_to_dict` output."""
    try:
        destination = payload["destination"]
        min_costs = {int(vertex): float(value) for vertex, value in payload["min_costs"].items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed binary heuristic payload: {exc}") from exc
    return BinaryHeuristic(destination, min_costs)


def heuristic_table_to_dict(source: HeuristicTable | BudgetSpecificHeuristic) -> dict:
    """Serialise a heuristic table (accepts the table or the full heuristic)."""
    table = source.table if isinstance(source, BudgetSpecificHeuristic) else source
    return {
        "format_version": _FORMAT_VERSION,
        "destination": table.destination,
        "delta": table.delta,
        "eta": table.eta,
        "rows": {
            str(vertex): {"first_index": row.first_index, "values": list(row.values)}
            for vertex, row in table.rows.items()
        },
    }


def heuristic_table_from_dict(payload: dict) -> HeuristicTable:
    """Rebuild a heuristic table from :func:`heuristic_table_to_dict` output."""
    try:
        if payload["format_version"] != _FORMAT_VERSION:
            raise DataError(f"unsupported heuristic format version {payload['format_version']!r}")
        table = HeuristicTable(
            destination=payload["destination"], delta=payload["delta"], eta=payload["eta"]
        )
        for vertex, row in payload["rows"].items():
            table.set_row(
                int(vertex),
                HeuristicRow(first_index=row["first_index"], values=tuple(row["values"])),
            )
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed heuristic table payload: {exc}") from exc
    return table


def save_heuristic_table(
    source: HeuristicTable | BudgetSpecificHeuristic, path: str | FilePath
) -> None:
    """Write a heuristic table to a JSON file."""
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(heuristic_table_to_dict(source), handle)


def load_heuristic_table(path: str | FilePath) -> HeuristicTable:
    """Read a heuristic table written by :func:`save_heuristic_table`."""
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"heuristic table file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return heuristic_table_from_dict(json.load(handle))
