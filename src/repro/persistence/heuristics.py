"""Persistence of pre-computed heuristics.

The heuristics are destination-specific and, at city scale, constitute the
bulk of the offline investment the paper trades for fast online routing
(Tables 8–10).  This module serialises them so a routing service can load the
tables for its hot destinations instead of rebuilding them:

* binary heuristics — the per-vertex ``getMin`` map,
* budget-specific heuristics — the compressed heuristic table (``l``/``s``
  bounds and the cells in between) plus the ``getMin`` map used for budget
  pruning, and
* heuristic *bundles* — a list of tagged heuristic payloads covering many
  destinations, which is what :meth:`repro.routing.engine.RoutingEngine.save_heuristics`
  writes and :meth:`~repro.routing.engine.RoutingEngine.prewarm` reads.

All files are strict JSON: unreachable vertices carry ``getMin = inf``, which
standard JSON cannot represent, so infinities are stored as the string
sentinel ``"inf"`` and every writer passes ``allow_nan=False`` (the legacy
non-standard ``Infinity`` token is still accepted on load).
"""

from __future__ import annotations

import json
import math
from collections.abc import Sequence
from pathlib import Path as FilePath

from repro.core.errors import DataError
from repro.persistence.codecs import require_format_version
from repro.heuristics.binary import BinaryHeuristic
from repro.heuristics.budget import BudgetHeuristicConfig, BudgetSpecificHeuristic
from repro.heuristics.tables import HeuristicRow, HeuristicTable

__all__ = [
    "binary_heuristic_to_dict",
    "binary_heuristic_from_dict",
    "heuristic_table_to_dict",
    "heuristic_table_from_dict",
    "budget_heuristic_to_dict",
    "budget_heuristic_from_dict",
    "save_heuristic_table",
    "load_heuristic_table",
    "save_heuristic_bundle",
    "load_heuristic_bundle",
    "heuristic_bundle_payload",
    "heuristic_bundle_entries",
]

_FORMAT_VERSION = 1
_BUNDLE_FORMAT_VERSION = 1

#: JSON-safe stand-in for ``float("inf")`` getMin values (unreachable vertices).
_INFINITY_SENTINEL = "inf"


def _encode_min_cost(value: float) -> float | str:
    return value if math.isfinite(value) else _INFINITY_SENTINEL


def binary_heuristic_to_dict(heuristic: BinaryHeuristic) -> dict:
    """Serialise a binary heuristic (its destination and per-vertex getMin values).

    Infinite ``getMin`` values (vertices that cannot reach the destination)
    are stored as the string sentinel ``"inf"`` so the document stays strict
    JSON; :func:`binary_heuristic_from_dict` converts them back.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "destination": heuristic.destination,
        "min_costs": {
            str(vertex): _encode_min_cost(value)
            for vertex, value in heuristic.min_cost_map().items()
        },
    }


def binary_heuristic_from_dict(payload: dict) -> BinaryHeuristic:
    """Rebuild a binary heuristic from :func:`binary_heuristic_to_dict` output.

    Accepts the ``"inf"`` sentinel (and the legacy non-standard ``Infinity``
    token, which Python's json module used to emit) for unreachable vertices.
    """
    require_format_version(payload, expected=_FORMAT_VERSION, what="binary heuristic")
    try:
        destination = payload["destination"]
        # float() parses numbers as well as the "inf" / "Infinity" sentinels.
        min_costs = {int(vertex): float(value) for vertex, value in payload["min_costs"].items()}
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed binary heuristic payload: {exc}") from exc
    if any(math.isnan(value) for value in min_costs.values()):
        raise DataError("malformed binary heuristic payload: NaN getMin value")
    return BinaryHeuristic(destination, min_costs)


def heuristic_table_to_dict(source: HeuristicTable | BudgetSpecificHeuristic) -> dict:
    """Serialise a heuristic table (accepts the table or the full heuristic)."""
    table = source.table if isinstance(source, BudgetSpecificHeuristic) else source
    return {
        "format_version": _FORMAT_VERSION,
        "destination": table.destination,
        "delta": table.delta,
        "eta": table.eta,
        "rows": {
            str(vertex): {"first_index": row.first_index, "values": row.values.tolist()}
            for vertex, row in table.rows.items()
        },
    }


def heuristic_table_from_dict(payload: dict) -> HeuristicTable:
    """Rebuild a heuristic table from :func:`heuristic_table_to_dict` output."""
    require_format_version(payload, expected=_FORMAT_VERSION, what="heuristic table")
    try:
        table = HeuristicTable(
            destination=payload["destination"], delta=payload["delta"], eta=payload["eta"]
        )
        for vertex, row in payload["rows"].items():
            table.set_row(
                int(vertex),
                HeuristicRow(first_index=row["first_index"], values=tuple(row["values"])),
            )
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed heuristic table payload: {exc}") from exc
    return table


def budget_heuristic_to_dict(heuristic: BudgetSpecificHeuristic) -> dict:
    """Serialise a budget-specific heuristic: its table plus the getMin map.

    The build's ``grid_rounding`` is recorded because it decides
    admissibility: ``"floor"``-built cells may slightly under-estimate, so a
    loader that needs admissible bounds must be able to tell the modes apart.
    """
    return {
        "format_version": _FORMAT_VERSION,
        "grid_rounding": heuristic.grid_rounding,
        "table": heuristic_table_to_dict(heuristic.table),
        "binary": binary_heuristic_to_dict(heuristic.binary),
    }


def budget_heuristic_from_dict(payload: dict) -> BudgetSpecificHeuristic:
    """Rebuild a servable budget-specific heuristic without re-running Eq. 5."""
    require_format_version(payload, expected=_FORMAT_VERSION, what="budget heuristic")
    try:
        table = heuristic_table_from_dict(payload["table"])
        binary = binary_heuristic_from_dict(payload["binary"])
        grid_rounding = payload.get("grid_rounding", "ceil")
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed budget heuristic payload: {exc}") from exc
    config = BudgetHeuristicConfig(
        delta=table.delta, max_budget=table.max_budget, grid_rounding=grid_rounding
    )
    return BudgetSpecificHeuristic.from_table(table, binary=binary, config=config)


def save_heuristic_table(
    source: HeuristicTable | BudgetSpecificHeuristic, path: str | FilePath
) -> None:
    """Write a heuristic table to a JSON file."""
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(heuristic_table_to_dict(source), handle, allow_nan=False)


def load_heuristic_table(path: str | FilePath) -> HeuristicTable:
    """Read a heuristic table written by :func:`save_heuristic_table`."""
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"heuristic table file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return heuristic_table_from_dict(json.load(handle))


def save_heuristic_bundle(entries: Sequence[dict], path: str | FilePath) -> None:
    """Write a list of tagged heuristic entries as one strict-JSON document.

    Each entry is a dict with a ``kind`` tag (``"binary"`` or ``"budget"``), a
    ``heuristic`` payload produced by the codecs above, and whatever routing
    metadata the writer needs to key its cache (variant, δ, graph flavour,
    and — since the cache became content-addressed — the
    ``graph_fingerprint`` that makes the bundle loadable by any process over
    structurally identical graphs).  The document is intentionally a dumb
    envelope: the :class:`~repro.routing.engine.RoutingEngine` decides what
    the entries mean.
    """
    path = FilePath(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(heuristic_bundle_payload(entries), handle, allow_nan=False)


def heuristic_bundle_payload(entries: Sequence[dict]) -> dict:
    """The bundle document for ``entries`` (what :func:`save_heuristic_bundle` writes)."""
    return {
        "format_version": _BUNDLE_FORMAT_VERSION,
        "kind": "heuristic-bundle",
        "entries": list(entries),
    }


def heuristic_bundle_entries(payload: dict) -> list[dict]:
    """Validate a bundle document's envelope and return its entries."""
    try:
        if payload["kind"] != "heuristic-bundle":
            raise DataError(f"not a heuristic bundle document (kind {payload['kind']!r})")
        require_format_version(
            payload, expected=_BUNDLE_FORMAT_VERSION, what="heuristic bundle"
        )
        entries = payload["entries"]
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed heuristic bundle: {exc}") from exc
    if not isinstance(entries, list):
        raise DataError("malformed heuristic bundle: entries must be a list")
    return entries


def load_heuristic_bundle(path: str | FilePath) -> list[dict]:
    """Read the entries of a bundle written by :func:`save_heuristic_bundle`."""
    path = FilePath(path)
    if not path.exists():
        raise DataError(f"heuristic bundle file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        return heuristic_bundle_entries(payload)
    except DataError as exc:
        raise DataError(f"{exc} ({path})") from exc
