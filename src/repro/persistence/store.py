"""Content-addressed store for the offline artifacts of a PACE deployment.

The paper's pipeline is explicitly offline/online: T-path mining, the V-path
closure and the Eq. 5 budget-table precompute happen *once*, and the routing
service only consumes the results.  This module is the on-disk contract
between the two halves.  One store directory holds everything a serving
process needs to boot without re-mining:

* ``manifest.json`` — the root document: graph content fingerprints, the
  :class:`~repro.routing.backends.DatasetRecipe` (when known), the
  :class:`~repro.routing.engine.RouterSettings` the artifacts were built for,
  per-artifact filenames with format versions and checksums, and free-form
  build provenance (who built it, when, how long the mining took),
* the routable index (road network, edge weights, T-paths with joints,
  V-paths) — ``index-<fingerprint>.json`` in the v1 JSON document format, or
  ``index-<fingerprint>.bin`` in the v2 columnar format of
  :mod:`repro.persistence.index`, and
* the pre-computed heuristics — either one v1 bundle
  (``heuristics-<digest>.json``) or, at format-version 2, one columnar
  document *per heuristic* (``heuristic-<key>-<digest>.bin``), each recorded
  in the manifest under its stable ``heuristic:<key>`` name.

The per-entry v2 layout is what makes ``prewarm --artifacts`` *incremental*:
entries are content-addressed, so re-saving a store with three new
destinations writes three new files and leaves every untouched table's file
byte-identical on disk — the v1 layout rewrote the whole bundle every time.
Format versions are recorded per artifact in the manifest, so v1 and v2
stores coexist and readers refuse unknown versions cleanly.

Artifact files are *content-addressed*: the index file is keyed by the graph
content fingerprint it serialises, heuristic documents by a digest of their
own bytes, and the manifest records a checksum for each file.  Readers
therefore never trust a path: :meth:`ArtifactStore.load_index` verifies the
checksum before parsing and the recomputed graph fingerprints after, so a
truncated file, a swapped dataset or a stale manifest all fail loudly with a
:class:`~repro.core.errors.DataError` instead of silently serving a different
city.  Writers replace the manifest last and garbage-collect unreferenced
artifact files, so a re-save (e.g. ``repro prewarm --artifacts`` adding more
destinations) keeps the directory consistent.  ``repro migrate-artifacts``
rewrites an existing store in the current format in place.

:class:`~repro.routing.engine.RoutingEngine.save_artifacts` /
:meth:`~repro.routing.engine.RoutingEngine.from_artifacts` are the high-level
entry points; the CLI exposes them as ``repro build-artifacts`` and
``--artifacts`` on the serving commands.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path as FilePath

from repro.core.errors import DataError
from repro.core.pace_graph import PaceGraph
from repro.persistence.codecs import (
    ColumnDocumentReader,
    is_column_document,
    open_column_document,
    require_format_version,
    strict_json_dumps,
    strict_json_loads,
)
from repro.persistence.heuristics import (
    encode_heuristic_entry,
    heuristic_bundle_entries,
    heuristic_bundle_payload,
    heuristic_entry_from_reader,
    heuristic_entry_key,
)
from repro.persistence.index import (
    INDEX_FORMAT_V1,
    INDEX_FORMAT_V2,
    index_from_column_reader,
    index_from_dict,
    index_to_column_bytes,
    index_to_dict,
)
from repro.vpaths.updated_graph import UpdatedPaceGraph

__all__ = [
    "MANIFEST_NAME",
    "INDEX_ARTIFACT",
    "HEURISTICS_ARTIFACT",
    "HEURISTIC_ENTRY_PREFIX",
    "DEFAULT_STORE_FORMAT",
    "ArtifactEntry",
    "ArtifactManifest",
    "ArtifactStore",
    "HeuristicStoreHandle",
    "StoreSummary",
    "checksum_bytes",
    "settings_digest",
]

#: Filename of the store's root document.
MANIFEST_NAME = "manifest.json"
#: Manifest ``kind`` tag; rejects unrelated JSON files early.
_STORE_KIND = "pace-artifact-store"
_MANIFEST_FORMAT_VERSION = 1

#: Logical artifact names (the keys of :attr:`ArtifactManifest.artifacts`).
INDEX_ARTIFACT = "index"
#: The v1 monolithic heuristic bundle.
HEURISTICS_ARTIFACT = "heuristics"
#: Prefix of v2 per-entry heuristic artifact names: ``heuristic:<entry key>``.
HEURISTIC_ENTRY_PREFIX = "heuristic:"

#: The format new stores are written in unless the caller asks otherwise.
DEFAULT_STORE_FORMAT = INDEX_FORMAT_V2

#: Serialised document format versions a reader accepts, per artifact name.
_SUPPORTED_ARTIFACT_VERSIONS = {
    INDEX_ARTIFACT: (INDEX_FORMAT_V1, INDEX_FORMAT_V2),
    HEURISTICS_ARTIFACT: (1,),
}


def _supported_versions(name: str) -> tuple[int, ...] | None:
    if name.startswith(HEURISTIC_ENTRY_PREFIX):
        return (2,)
    return _SUPPORTED_ARTIFACT_VERSIONS.get(name)


def checksum_bytes(data: bytes) -> str:
    """The store's file checksum: a blake2b digest of the raw bytes.

    Public because the catalog (:mod:`repro.catalog`) re-verifies artifact
    files against the checksums it recorded at sync time — both sides must
    agree on the algorithm.
    """
    return hashlib.blake2b(data, digest_size=16).hexdigest()


_checksum = checksum_bytes


def settings_digest(settings: dict) -> str:
    """A stable digest of a manifest ``settings`` mapping.

    Canonical strict JSON (sorted keys) hashed with the store checksum, so
    two stores built for identical :class:`~repro.routing.engine.RouterSettings`
    compare equal by digest no matter the key order their manifests recorded.
    """
    return checksum_bytes(strict_json_dumps(settings, sort_keys=True).encode("utf-8"))


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class ArtifactEntry:
    """One artifact file as the manifest records it."""

    filename: str
    format_version: int
    checksum: str
    size_bytes: int

    def to_dict(self) -> dict:
        return {
            "filename": self.filename,
            "format_version": self.format_version,
            "checksum": self.checksum,
            "size_bytes": self.size_bytes,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArtifactEntry":
        try:
            return cls(
                filename=str(payload["filename"]),
                # The manifest records a *per-artifact* version here — which
                # version each entry was written at, not a single expected
                # constant; validation happens in _artifact_bytes().
                format_version=int(payload["format_version"]),  # repro: ignore[format-version]
                checksum=str(payload["checksum"]),
                size_bytes=int(payload["size_bytes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(f"malformed artifact manifest entry: {exc}") from exc


@dataclass(frozen=True)
class ArtifactManifest:
    """The store's root document: identity, contents and provenance.

    ``fingerprints`` maps ``"pace"`` (always) and ``"updated"`` (``None``
    when the store was built without the V-path closure) to graph content
    fingerprints — the identity the loaded graphs are verified against.
    ``settings`` is the :class:`~repro.routing.engine.RouterSettings` the
    artifacts were built for (budget tables only admit budgets up to their
    ``max_budget``, so the settings travel with the tables); ``recipe`` is
    the :class:`~repro.routing.backends.DatasetRecipe` that mined the index,
    when known.  ``provenance`` is free-form build metadata (timestamps,
    builder, mining wall-clock) surfaced through
    :class:`~repro.routing.engine.EngineStats` but never interpreted.
    """

    fingerprints: dict[str, str | None]
    artifacts: dict[str, ArtifactEntry]
    settings: dict
    recipe: dict | None = None
    provenance: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if "pace" not in self.fingerprints or not isinstance(self.fingerprints["pace"], str):
            raise DataError("artifact manifest must record a 'pace' content fingerprint")
        if INDEX_ARTIFACT not in self.artifacts:
            raise DataError("artifact manifest must reference an index artifact")
        if HEURISTICS_ARTIFACT in self.artifacts and self.heuristic_entry_names():
            # One store, one heuristic layout: a v1 monolithic bundle and v2
            # per-entry documents in the same manifest would make "which
            # tables does this store hold" ambiguous (and a partial migration
            # look healthy).  Mixed-version manifests are rejected outright.
            raise DataError(
                "artifact manifest mixes a format-version-1 heuristic bundle with "
                "format-version-2 per-entry heuristics; re-run 'repro "
                "migrate-artifacts' (or rebuild the store) to settle on one format"
            )

    def heuristic_entry_names(self) -> list[str]:
        """The v2 per-entry heuristic artifact names, sorted for determinism."""
        return sorted(name for name in self.artifacts if name.startswith(HEURISTIC_ENTRY_PREFIX))

    def to_dict(self) -> dict:
        return {
            "kind": _STORE_KIND,
            "format_version": _MANIFEST_FORMAT_VERSION,
            "fingerprints": dict(self.fingerprints),
            "artifacts": {name: entry.to_dict() for name, entry in self.artifacts.items()},
            "settings": dict(self.settings),
            "recipe": None if self.recipe is None else dict(self.recipe),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ArtifactManifest":
        if not isinstance(payload, dict):
            raise DataError(
                f"artifact manifest must be a JSON object, got {type(payload).__name__}"
            )
        if payload.get("kind") != _STORE_KIND:
            raise DataError(
                f"not an artifact store manifest (kind {payload.get('kind')!r}, "
                f"expected {_STORE_KIND!r})"
            )
        require_format_version(
            payload, expected=_MANIFEST_FORMAT_VERSION, what="artifact manifest"
        )
        try:
            fingerprints = dict(payload["fingerprints"])
            artifacts = {
                str(name): ArtifactEntry.from_dict(entry)
                for name, entry in payload["artifacts"].items()
            }
            settings = dict(payload["settings"])
            recipe = payload.get("recipe")
            provenance = dict(payload.get("provenance", {}))
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            # AttributeError: "artifacts": null / a list has no .items().
            raise DataError(f"malformed artifact manifest: {exc}") from exc
        if recipe is not None and not isinstance(recipe, dict):
            raise DataError("artifact manifest 'recipe' must be an object or null")
        return cls(
            fingerprints=fingerprints,
            artifacts=artifacts,
            settings=settings,
            recipe=recipe,
            provenance=provenance,
        )


@dataclass(frozen=True)
class StoreSummary:
    """One consistent, cheap snapshot of a store's identity and contents.

    This is the shared "what is this store?" accessor: the serving tier's
    hot-reload watcher (:mod:`repro.serving.reload`) and the fleet catalog's
    sync (:mod:`repro.catalog.registry`) both read it instead of poking at
    manifest internals.  All fields come from **one** read of the manifest
    bytes, so ``manifest_fingerprint`` is guaranteed to describe exactly the
    parsed contents even while a writer republishes the store concurrently.
    """

    root: str
    #: Checksum of the manifest bytes this summary was parsed from — the
    #: change-detection primitive (writers replace the manifest atomically
    #: and last, so a new fingerprint means a complete new build).
    manifest_fingerprint: str
    fingerprints: dict[str, str | None]
    artifacts: dict[str, ArtifactEntry]
    settings: dict
    settings_digest: str
    recipe: dict | None
    provenance: dict

    @property
    def pace_fingerprint(self) -> str:
        fingerprint = self.fingerprints.get("pace")
        if not isinstance(fingerprint, str):  # unreachable past ArtifactManifest validation
            raise DataError(f"store summary for {self.root} lacks a 'pace' fingerprint")
        return fingerprint

    @property
    def updated_fingerprint(self) -> str | None:
        return self.fingerprints.get("updated")

    @property
    def index_format_version(self) -> int:
        return self.artifacts[INDEX_ARTIFACT].format_version

    @property
    def heuristic_documents(self) -> int:
        """Persisted heuristic artifact count (v2 per-entry files, or 1 v1 bundle)."""
        if HEURISTICS_ARTIFACT in self.artifacts:
            return 1
        return sum(1 for name in self.artifacts if name.startswith(HEURISTIC_ENTRY_PREFIX))

    @property
    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.artifacts.values())


class ArtifactStore:
    """One deployment's offline artifacts in one directory.

    Construct with the root directory; :meth:`open` additionally requires the
    manifest to exist and parse (the read side), while :meth:`save` creates or
    replaces the store contents (the write side).  All read paths verify file
    checksums against the manifest, and :meth:`load_index` verifies the
    recomputed graph content fingerprints, so every corruption mode surfaces
    as a :class:`~repro.core.errors.DataError` at boot rather than as wrong
    routes at serve time.
    """

    def __init__(self, root: str | FilePath) -> None:
        self.root = FilePath(root)
        self._manifest: ArtifactManifest | None = None

    @classmethod
    def open(cls, root: str | FilePath) -> "ArtifactStore":
        """Open an existing store, validating its manifest eagerly."""
        store = cls(root)
        if not store.manifest_path.exists():
            raise DataError(
                f"no artifact store at {store.root}: {MANIFEST_NAME} not found "
                "(build one with RoutingEngine.save_artifacts or 'repro build-artifacts')"
            )
        store.manifest  # noqa: B018 - force the parse so open() fails fast
        return store

    @property
    def manifest_path(self) -> FilePath:
        return self.root / MANIFEST_NAME

    @property
    def manifest(self) -> ArtifactManifest:
        """The parsed manifest (cached after the first read)."""
        if self._manifest is None:
            try:
                # The manifest is a small JSON document.
                text = self.manifest_path.read_text(encoding="utf-8")  # repro: ignore[residency-discipline]
            except FileNotFoundError as exc:
                raise DataError(f"no artifact store at {self.root}: {exc}") from exc
            payload = strict_json_loads(
                text, what=f"corrupted artifact manifest {self.manifest_path}"
            )
            self._manifest = ArtifactManifest.from_dict(payload)
        return self._manifest

    def manifest_fingerprint(self) -> str | None:
        """A checksum of the manifest file's bytes *right now*, or ``None``.

        The cheap change-detection primitive for long-lived serving processes:
        every write path replaces the manifest last, so a changed checksum
        means "the store was republished — reload", and an unchanged one means
        nothing to do, without parsing (or trusting) the document.  Returns
        ``None`` while no manifest exists (store mid-creation or removed).
        """
        try:
            # Small manifest; the fingerprint needs every byte.
            return _checksum(self.manifest_path.read_bytes())  # repro: ignore[residency-discipline]
        except OSError:
            return None

    def summary(self) -> StoreSummary:
        """A :class:`StoreSummary` snapshot parsed from one manifest read.

        Unlike :attr:`manifest` this never caches and pairs the parsed
        contents with the fingerprint of the very bytes they came from, so a
        watcher (serving reload) or an indexer (catalog sync) polling a store
        that is being republished sees either the old build or the new one —
        never the old fingerprint with the new contents.  Raises
        :class:`~repro.core.errors.DataError` when the manifest is missing or
        malformed.
        """
        try:
            # Small manifest JSON document.
            raw = self.manifest_path.read_bytes()  # repro: ignore[residency-discipline]
        except OSError as exc:
            raise DataError(f"no artifact store at {self.root}: {exc}") from exc
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DataError(
                f"corrupted artifact manifest {self.manifest_path}: not UTF-8 ({exc})"
            ) from exc
        payload = strict_json_loads(
            text, what=f"corrupted artifact manifest {self.manifest_path}"
        )
        manifest = ArtifactManifest.from_dict(payload)
        return StoreSummary(
            root=str(self.root),
            manifest_fingerprint=checksum_bytes(raw),
            fingerprints=dict(manifest.fingerprints),
            artifacts=dict(manifest.artifacts),
            settings=dict(manifest.settings),
            settings_digest=settings_digest(manifest.settings),
            recipe=None if manifest.recipe is None else dict(manifest.recipe),
            provenance=dict(manifest.provenance),
        )

    def refresh(self) -> "ArtifactStore":
        """Drop the cached manifest so the next read reparses it from disk.

        :attr:`manifest` caches its parse — correct for the boot-once reader,
        wrong for a watcher that polls one store object across republishes.
        Returns ``self`` for chaining (``store.refresh().manifest``).
        """
        self._manifest = None
        return self

    def has_artifact(self, name: str) -> bool:
        return name in self.manifest.artifacts

    def artifact_path(self, name: str) -> FilePath:
        try:
            entry = self.manifest.artifacts[name]
        except KeyError as exc:
            raise DataError(f"artifact store {self.root} holds no {name!r} artifact") from exc
        return self.root / entry.filename

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def _artifact_entry(self, name: str) -> ArtifactEntry:
        """One artifact's manifest entry, its ``format_version`` validated.

        A store written by a newer codec is refused here — before a single
        payload byte is parsed, whichever read path (bytes or streaming)
        follows.
        """
        entry = self.manifest.artifacts.get(name)
        if entry is None:
            raise DataError(f"artifact store {self.root} holds no {name!r} artifact")
        supported = _supported_versions(name)
        if supported is not None and entry.format_version not in supported:
            raise DataError(
                f"unsupported {name} artifact format version {entry.format_version} "
                f"(this reader supports {', '.join(map(str, supported))}); "
                "re-export the store with a matching writer or run "
                "'repro migrate-artifacts'"
            )
        return entry

    def _artifact_bytes(self, name: str) -> tuple[ArtifactEntry, bytes]:
        """One artifact's manifest entry and checksum-verified raw bytes.

        The *v1 JSON* read path: the whole document is read and hashed against
        the manifest checksum before parsing.  v2 column documents must go
        through :meth:`_open_artifact_reader` instead (enforced by the
        ``residency-discipline`` analysis rule), which streams mmap views and
        never materialises the file as a bytes object.
        """
        entry = self._artifact_entry(name)
        path = self.root / entry.filename
        try:
            data = path.read_bytes()  # repro: ignore[residency-discipline] — v1 JSON read path
        except FileNotFoundError as exc:
            raise DataError(
                f"artifact store {self.root} is missing {entry.filename} "
                f"(referenced by the manifest as {name!r})"
            ) from exc
        checksum = _checksum(data)
        if checksum != entry.checksum:
            raise DataError(
                f"artifact {entry.filename} in {self.root} is corrupted: checksum "
                f"{checksum} does not match the manifest's {entry.checksum}"
            )
        return entry, data

    def _open_artifact_reader(self, name: str, *, verify: bool = False) -> ColumnDocumentReader:
        """Open one v2 column artifact as a zero-copy streaming reader.

        The header and frame offsets are validated at open and the mapped
        size checked against the manifest's ``size_bytes`` (truncation and
        appended garbage surface immediately); per-column digests cover every
        payload byte and are verified as columns are touched.  ``verify=True``
        is the opt-in eager mode for the deep-verification paths: the whole
        document is re-hashed against the manifest checksum and every column
        digest checked before the reader is returned.
        """
        entry = self._artifact_entry(name)
        path = self.root / entry.filename
        try:
            reader = open_column_document(path, what=f"artifact {entry.filename}")
        except DataError as exc:
            if not path.exists():
                raise DataError(
                    f"artifact store {self.root} is missing {entry.filename} "
                    f"(referenced by the manifest as {name!r})"
                ) from exc
            raise
        try:
            if reader.size_bytes != entry.size_bytes:
                raise DataError(
                    f"artifact {entry.filename} in {self.root} is corrupted: size "
                    f"{reader.size_bytes} does not match the manifest's {entry.size_bytes}"
                )
            if verify:
                checksum = reader.checksum()
                if checksum != entry.checksum:
                    raise DataError(
                        f"artifact {entry.filename} in {self.root} is corrupted: checksum "
                        f"{checksum} does not match the manifest's {entry.checksum}"
                    )
                reader.verify()
        except DataError:
            reader.close()
            raise
        return reader

    def read_document(self, name: str) -> dict:
        """Read one *JSON* artifact document, verifying checksum and format version."""
        entry, data = self._artifact_bytes(name)
        if is_column_document(data):
            raise DataError(
                f"artifact {entry.filename} is a binary column document; read it "
                "through load_index() / load_heuristic_entries(), not read_document()"
            )
        payload = strict_json_loads(data, what=f"artifact {entry.filename}")
        require_format_version(
            payload, expected=entry.format_version, what=f"{name} artifact"
        )
        return payload

    def _read_index_graph(self) -> UpdatedPaceGraph:
        """Parse the index artifact, dispatching on its recorded format version.

        v2 documents stream through an mmap reader, so boot never holds the
        index file bytes and the materialised graph concurrently; the v1 JSON
        path releases its raw bytes once parsed, before graph construction.
        """
        entry = self._artifact_entry(INDEX_ARTIFACT)
        if entry.format_version == INDEX_FORMAT_V2:
            with self._open_artifact_reader(INDEX_ARTIFACT) as reader:
                return index_from_column_reader(reader)
        entry, data = self._artifact_bytes(INDEX_ARTIFACT)
        payload = strict_json_loads(data, what=f"artifact {entry.filename}")
        del data  # parsed payload supersedes the raw document bytes
        require_format_version(payload, expected=INDEX_FORMAT_V1, what="index artifact")
        return index_from_dict(payload)

    def load_index(self) -> tuple[PaceGraph, UpdatedPaceGraph | None]:
        """Load the routable index and verify it against the manifest identity.

        Returns ``(pace_graph, updated_graph)``; ``updated_graph`` is ``None``
        when the store was built without the V-path closure.  The recomputed
        content fingerprints must equal the manifest's — a mismatch means the
        index file belongs to different graph content than the manifest (and
        its heuristics) claim, and is rejected.
        """
        manifest = self.manifest
        updated = self._read_index_graph()
        pace = updated.pace_graph
        pace_fingerprint = pace.content_fingerprint()
        if pace_fingerprint != manifest.fingerprints["pace"]:
            raise DataError(
                f"index artifact in {self.root} holds a different PACE graph than the "
                f"manifest records (content fingerprint {pace_fingerprint} != "
                f"{manifest.fingerprints['pace']})"
            )
        updated_fingerprint = manifest.fingerprints.get("updated")
        if updated_fingerprint is None:
            return pace, None
        if updated.content_fingerprint() != updated_fingerprint:
            raise DataError(
                f"index artifact in {self.root} holds a different V-path closure than "
                f"the manifest records (content fingerprint "
                f"{updated.content_fingerprint()} != {updated_fingerprint})"
            )
        return pace, updated

    def load_heuristic_entries(self) -> list[dict]:
        """The tagged heuristic entries, or ``[]`` when none were persisted.

        Reads whichever layout the store holds: the v1 monolithic bundle, or
        the v2 per-entry column documents (each streamed through an mmap
        reader — per-column digests verified as the columns are decoded — and
        checked against its own ``heuristic:<key>`` name, so a file swapped
        for a different destination's table fails loudly).
        """
        if self.has_artifact(HEURISTICS_ARTIFACT):
            return heuristic_bundle_entries(self.read_document(HEURISTICS_ARTIFACT))
        entries: list[dict] = []
        for name in self.manifest.heuristic_entry_names():
            entries.append(self._load_heuristic_document(name))
        return entries

    def _load_heuristic_document(self, name: str) -> dict:
        """Fault in one ``heuristic:<key>`` document, verified against its name."""
        with self._open_artifact_reader(name) as reader:
            entry = heuristic_entry_from_reader(reader)
        expected = HEURISTIC_ENTRY_PREFIX + heuristic_entry_key(entry)
        if name != expected:
            raise DataError(
                f"heuristic artifact {name!r} in {self.root} decodes to a different "
                f"heuristic ({expected!r}); the store is inconsistent"
            )
        return entry

    def open_heuristics(self) -> "HeuristicStoreHandle":
        """A lazy, key-addressed handle over the store's persisted heuristics.

        Listing the entry keys costs only the (already parsed) manifest for a
        v2 store — no blob is read until :meth:`HeuristicStoreHandle.load_entry`
        faults a single entry in.  This is the residency primitive behind
        ``RoutingEngine.from_artifacts(prewarm="none")``: a country-scale boot
        lists thousands of keys for free and pages individual destinations'
        tables in on demand.
        """
        return HeuristicStoreHandle(self)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save(
        self,
        *,
        fingerprints: dict[str, str | None],
        settings: dict,
        graph: PaceGraph | UpdatedPaceGraph | None = None,
        index_document: dict | None = None,
        heuristic_entries: list[dict] | None = None,
        recipe: dict | None = None,
        provenance: dict | None = None,
        format_version: int | None = None,
    ) -> ArtifactManifest:
        """Write (or replace) the store contents and return the new manifest.

        The index is passed as ``graph`` (serialised here in the chosen
        ``format_version``) or, for v1 compatibility, as a ready-made
        ``index_document`` dictionary.  ``format_version=None`` keeps the
        format an existing store already uses and defaults fresh stores to
        :data:`DEFAULT_STORE_FORMAT` (v2 columnar).

        The index file is named by the primary graph fingerprint (the V-path
        closure's when present, the PACE graph's otherwise); heuristics are
        content-addressed by a digest of their own bytes — at v2 one document
        *per entry*, so a re-save writes only the tables that changed and
        leaves the rest byte-identical on disk.  The manifest is replaced
        atomically last, and any artifact files no longer referenced are
        removed.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        if format_version is None:
            format_version = self._current_format() or DEFAULT_STORE_FORMAT
        if format_version not in (INDEX_FORMAT_V1, INDEX_FORMAT_V2):
            raise DataError(
                f"unsupported artifact store format version {format_version} "
                f"(this writer supports {INDEX_FORMAT_V1} and {INDEX_FORMAT_V2})"
            )
        primary = fingerprints.get("updated") or fingerprints.get("pace")
        if not primary:
            raise DataError("artifact stores need at least the 'pace' content fingerprint")

        artifacts: dict[str, ArtifactEntry] = {}
        if (graph is None) == (index_document is None):
            raise DataError("save() needs exactly one of graph= or index_document=")
        if format_version == INDEX_FORMAT_V2:
            if graph is None:
                raise DataError(
                    "writing a format-version-2 index needs the graph itself "
                    "(pass graph=, not index_document=)"
                )
            index_bytes = index_to_column_bytes(graph)
            index_name = f"index-{primary[:16]}.bin"
        else:
            document = index_document if graph is None else index_to_dict(graph)
            if document is None:  # unreachable: the exactly-one check above
                raise DataError("save() needs exactly one of graph= or index_document=")
            index_bytes = strict_json_dumps(document).encode("utf-8")
            index_name = f"index-{primary[:16]}.json"
        artifacts[INDEX_ARTIFACT] = self._write_blob(
            index_name, index_bytes, format_version=format_version
        )
        if heuristic_entries:
            artifacts.update(
                self._write_heuristics(heuristic_entries, format_version=format_version)
            )
        else:
            # A saver with no heuristics to contribute (e.g. an engine booted
            # with overridden settings that skipped the persisted tables) must
            # not destroy the store's existing prewarm investment: tables are
            # keyed by graph content, so as long as the graphs are unchanged
            # the previously persisted documents stay valid — keep them.
            artifacts.update(self._carry_over_heuristics(fingerprints))

        full_provenance = {"created_at": _utc_now_iso()}
        full_provenance.update(provenance or {})
        manifest = ArtifactManifest(
            fingerprints=dict(fingerprints),
            artifacts=artifacts,
            settings=dict(settings),
            recipe=None if recipe is None else dict(recipe),
            provenance=full_provenance,
        )
        temporary = self.manifest_path.with_suffix(".json.tmp")
        temporary.write_text(
            strict_json_dumps(manifest.to_dict(), indent=2), encoding="utf-8"
        )
        temporary.replace(self.manifest_path)
        self._manifest = manifest
        self._collect_garbage(manifest)
        return manifest

    def _current_format(self) -> int | None:
        """The index format an existing store uses, or ``None`` for fresh stores."""
        if not self.manifest_path.exists():
            return None
        try:
            entry = self.manifest.artifacts.get(INDEX_ARTIFACT)
        except DataError:
            return None
        return None if entry is None else entry.format_version

    def _write_heuristics(
        self, entries: list[dict], *, format_version: int
    ) -> dict[str, ArtifactEntry]:
        """Write the heuristic payloads in the chosen layout.

        v1: one monolithic JSON bundle.  v2: one column document per entry,
        named ``heuristic:<key>`` and content-addressed by its own digest —
        the :meth:`_write_blob` checksum short-circuit then leaves unchanged
        tables' files untouched on a re-save (incremental prewarm).
        """
        if format_version == INDEX_FORMAT_V1:
            bundle_bytes = strict_json_dumps(heuristic_bundle_payload(entries)).encode(
                "utf-8"
            )
            return {
                HEURISTICS_ARTIFACT: self._write_blob(
                    f"heuristics-{_checksum(bundle_bytes)[:16]}.json",
                    bundle_bytes,
                    format_version=1,
                )
            }
        artifacts: dict[str, ArtifactEntry] = {}
        for entry in entries:
            key = heuristic_entry_key(entry)
            name = HEURISTIC_ENTRY_PREFIX + key
            if name in artifacts:
                raise DataError(
                    f"duplicate heuristic entry {key!r}: the engine handed the store "
                    "two tables for the same (kind, variant, graph, destination) slot"
                )
            blob = encode_heuristic_entry(entry)
            artifacts[name] = self._write_blob(
                f"heuristic-{key}-{_checksum(blob)[:12]}.bin", blob, format_version=2
            )
        return artifacts

    def _carry_over_heuristics(
        self, fingerprints: dict[str, str | None]
    ) -> dict[str, ArtifactEntry]:
        """The current manifest's heuristic entries (any layout), iff still valid."""
        if not self.manifest_path.exists():
            return {}
        try:
            previous = self.manifest
        except DataError:
            return {}
        if dict(previous.fingerprints) != dict(fingerprints):
            return {}
        return {
            name: entry
            for name, entry in previous.artifacts.items()
            if (name == HEURISTICS_ARTIFACT or name.startswith(HEURISTIC_ENTRY_PREFIX))
            and (self.root / entry.filename).exists()
        }

    def _write_blob(self, filename: str, data: bytes, *, format_version: int) -> ArtifactEntry:
        checksum = _checksum(data)
        path = self.root / filename
        # Content-addressed names make equality checkable without reading the
        # old file for the bundle; the index name is the graph fingerprint, so
        # compare checksums before rewriting a multi-megabyte document.
        # Write-path dedup checksum, not a decode.
        if not path.exists() or _checksum(path.read_bytes()) != checksum:  # repro: ignore[residency-discipline]
            path.write_bytes(data)
        return ArtifactEntry(
            filename=filename,
            format_version=format_version,
            checksum=checksum,
            size_bytes=len(data),
        )

    def _collect_garbage(self, manifest: ArtifactManifest) -> None:
        referenced = {entry.filename for entry in manifest.artifacts.values()}
        for pattern in ("index-*.json", "index-*.bin", "heuristics-*.json", "heuristic-*.bin"):
            for stale in self.root.glob(pattern):
                if stale.name not in referenced:
                    stale.unlink(missing_ok=True)

    def __repr__(self) -> str:
        root = str(self.root)
        return f"ArtifactStore(root={root!r})"


class HeuristicStoreHandle:
    """Key-addressed, fault-on-demand access to one store's heuristic tables.

    Created by :meth:`ArtifactStore.open_heuristics`.  For v2 stores the
    entry keys (``binary-P-35``, ``budget-60.0-pace-35``, …) come straight
    from the manifest — listing is free — and :meth:`load_entry` opens just
    that entry's column document through the streaming reader.  v1 stores
    hold one monolithic bundle, so the same interface is served by parsing
    the bundle once, lazily, on the first touch (a v1 store cannot fault
    per-entry; migrating to v2 is what buys true laziness).

    The handle is thread-safe: concurrent faults for different keys proceed
    in parallel (each opens its own reader), and the one-time v1 bundle parse
    is serialised on an internal lock.
    """

    def __init__(self, store: ArtifactStore) -> None:
        self._store = store
        manifest = store.manifest
        self._names: dict[str, str] = {
            name[len(HEURISTIC_ENTRY_PREFIX) :]: name
            for name in manifest.heuristic_entry_names()
        }
        self._has_v1_bundle = HEURISTICS_ARTIFACT in manifest.artifacts
        self._lock = threading.Lock()
        self._v1_entries: dict[str, dict] | None = None

    @property
    def store(self) -> ArtifactStore:
        return self._store

    def _bundle_entries(self) -> dict[str, dict]:
        """The parsed v1 bundle, keyed by entry key (read once, under the lock)."""
        with self._lock:
            if self._v1_entries is None:
                entries: dict[str, dict] = {}
                for entry in self._store.load_heuristic_entries():
                    entries[heuristic_entry_key(entry)] = entry
                self._v1_entries = entries
            return self._v1_entries

    def keys(self) -> tuple[str, ...]:
        """Every persisted entry key, sorted (manifest-only for v2 stores)."""
        if self._has_v1_bundle:
            return tuple(sorted(self._bundle_entries()))
        return tuple(sorted(self._names))

    def __contains__(self, key: str) -> bool:
        if self._has_v1_bundle:
            return key in self._bundle_entries()
        return key in self._names

    def __len__(self) -> int:
        if self._has_v1_bundle:
            return len(self._bundle_entries())
        return len(self._names)

    def entry_size_bytes(self, key: str) -> int:
        """One entry's on-disk size from the manifest (0 for v1 bundle entries)."""
        name = self._names.get(key)
        if name is None:
            return 0
        return self._store.manifest.artifacts[name].size_bytes

    def total_size_bytes(self) -> int:
        """The summed on-disk size of every persisted heuristic document."""
        manifest = self._store.manifest
        total = sum(
            manifest.artifacts[name].size_bytes for name in self._names.values()
        )
        if self._has_v1_bundle:
            total += manifest.artifacts[HEURISTICS_ARTIFACT].size_bytes
        return total

    def load_entry(self, key: str) -> dict:
        """Fault one tagged entry in by key.

        v2: opens exactly that entry's column document (mmap streamed, column
        digests verified during decode, name re-derived and checked).  v1:
        served from the lazily parsed bundle.  Unknown keys and corrupted
        documents raise :class:`~repro.core.errors.DataError`.
        """
        if self._has_v1_bundle:
            try:
                return self._bundle_entries()[key]
            except KeyError as exc:
                raise DataError(
                    f"artifact store {self._store.root} holds no heuristic entry {key!r}"
                ) from exc
        name = self._names.get(key)
        if name is None:
            raise DataError(
                f"artifact store {self._store.root} holds no heuristic entry {key!r}"
            )
        return self._store._load_heuristic_document(name)
