"""Codecs for distributions, joint distributions and binary column documents.

The offline/online split of the paper only pays off if the offline artefacts
(the PACE graph, the V-paths, the heuristic tables) can be stored and loaded
by the online routing service.  This module provides the low-level codecs for
the probabilistic values; :mod:`repro.persistence.index` and
:mod:`repro.persistence.heuristics` build the document formats on top.

Two containers exist side by side:

* the original **v1 JSON** dictionaries — human-inspectable, diff-able and
  free of pickle's code-execution hazards, and
* the **column container** backing the format-version-2 artifacts: a framed
  binary document holding a strict-JSON metadata header plus named NumPy
  columns as checksummed little-endian blobs.  Columns round-trip **bit for
  bit** — no float renormalisation anywhere on the path — because graph
  content fingerprints are computed over the raw float payloads and must
  survive a save/load cycle exactly (v1 learned this the hard way; see
  :func:`distribution_from_sequences`).
"""

from __future__ import annotations

import hashlib
import json
import mmap
import struct
from collections.abc import Sequence
from pathlib import Path as FilePath
from typing import IO, Any, NamedTuple

import numpy as np

from repro.core.distributions import Distribution
from repro.core.errors import DataError, DistributionError, JointDistributionError
from repro.core.joint import JointDistribution

__all__ = [
    "strict_json_dumps",
    "strict_json_dump",
    "strict_json_loads",
    "require_format_version",
    "distribution_to_dict",
    "distribution_from_dict",
    "distribution_from_sequences",
    "joint_to_dict",
    "joint_from_dict",
    "joint_from_sequences",
    "COLUMN_MAGIC",
    "encode_column_document",
    "decode_column_document",
    "is_column_document",
    "split_ragged_column",
    "ColumnDocumentReader",
    "open_column_document",
]


def strict_json_dumps(payload: Any, *, indent: int | None = None, sort_keys: bool = False) -> str:
    """Serialise ``payload`` as *strict* JSON: no ``NaN``/``Infinity`` tokens.

    Python's :func:`json.dumps` happily emits the non-standard ``NaN`` /
    ``Infinity`` constants, producing documents only Python can read back.
    Every persistence writer goes through this helper instead (enforced by
    the ``strict-json`` analysis rule); values that cannot be represented
    (``float("nan")`` leaking into a payload) fail loudly as
    :class:`~repro.core.errors.DataError` at write time rather than
    poisoning the artifact.
    """
    try:
        # The one sanctioned dumps call of the persistence package.
        return json.dumps(  # repro: ignore[strict-json]
            payload, allow_nan=False, indent=indent, sort_keys=sort_keys
        )
    except ValueError as exc:
        raise DataError(f"payload is not strict-JSON serialisable: {exc}") from exc


def strict_json_dump(payload: Any, handle: IO[str], *, indent: int | None = None) -> None:
    """File-handle companion of :func:`strict_json_dumps` (same strictness)."""
    handle.write(strict_json_dumps(payload, indent=indent))


def strict_json_loads(
    data: str | bytes, *, what: str, allow_legacy_infinity: bool = False
) -> Any:
    """Decode strict JSON, mapping every failure to a :class:`DataError`.

    Rejects the non-standard ``NaN``/``Infinity``/``-Infinity`` tokens that
    :func:`json.loads` accepts by default — a document carrying them was
    written by a non-strict writer and would silently round-trip values
    standard JSON cannot represent.  ``allow_legacy_infinity=True`` restores
    acceptance of ``Infinity``/``-Infinity`` (never ``NaN``) for the
    heuristic v1 documents written before the ``"inf"`` string sentinel
    existed.  ``what`` names the document in error messages.
    """

    def parse_constant(token: str) -> float:
        if allow_legacy_infinity and token in ("Infinity", "-Infinity"):
            return float(token)
        raise DataError(f"{what} contains the non-standard JSON token {token!r}")

    try:
        # The one sanctioned loads call of the persistence package.
        return json.loads(data, parse_constant=parse_constant)  # repro: ignore[strict-json]
    except json.JSONDecodeError as exc:
        raise DataError(f"{what} is not valid JSON: {exc}") from exc


def require_format_version(payload: dict, *, expected: int, what: str) -> int:
    """Validate a document's ``format_version`` field against ``expected``.

    Every persisted document in this package carries a ``format_version`` so
    readers can refuse documents written by a newer (or corrupted) writer
    instead of mis-parsing them.  Raises :class:`~repro.core.errors.DataError`
    naming the offending version, the supported version and the document kind;
    a missing or non-integer field is rejected with its own message rather
    than being silently treated as version 0.  Returns the validated version.
    """
    try:
        version = payload["format_version"]
    except (KeyError, TypeError) as exc:
        raise DataError(f"{what} carries no format_version field") from exc
    if not isinstance(version, int) or isinstance(version, bool):
        raise DataError(
            f"{what} format_version must be an integer, got {version!r}"
        )
    if version != expected:
        raise DataError(
            f"unsupported {what} format version {version} "
            f"(this reader supports version {expected}); "
            "re-export the document with a matching writer"
        )
    return version


# --------------------------------------------------------------------------- #
# Binary column container (format-version-2 artifacts)
# --------------------------------------------------------------------------- #

#: Leading bytes of every column document; lets readers (and ``file``-style
#: sniffing) distinguish the binary container from the v1 JSON documents.
COLUMN_MAGIC = b"RCOL"
_COLUMN_CONTAINER_VERSION = 1
#: dtypes a column may carry, as explicit little-endian codes.  A whitelist,
#: not a passthrough: object/str dtypes would turn the decoder into an
#: arbitrary-unpickling hazard, and platform-native codes would make the
#: on-disk bytes machine-dependent.
_COLUMN_DTYPES = ("<f8", "<i8")
_HEADER = struct.Struct("<4sHI")  # magic, container version, meta length
_COLUMN_COUNT = struct.Struct("<I")
_COLUMN_HEAD = struct.Struct("<H3sQ16s")  # name length, dtype, elements, digest
_COLUMN_DIGEST_SIZE = 16


def _column_digest(payload: bytes | memoryview) -> bytes:
    return hashlib.blake2b(payload, digest_size=_COLUMN_DIGEST_SIZE).digest()


class _ColumnFrame(NamedTuple):
    """One column's location inside a framed document (payload not yet read)."""

    name: str
    dtype: str
    offset: int  # byte offset of the payload within the document
    elements: int
    digest: bytes

    @property
    def nbytes(self) -> int:
        return self.elements * 8


def _walk_frames(view: memoryview, *, what: str) -> tuple[dict, list[_ColumnFrame]]:
    """Validate a column document's header and frame offsets without touching payloads.

    Shared by the eager decoder and the streaming reader: every structural
    check (magic, container version, metadata JSON, dtype whitelist, frame
    bounds, duplicate names, trailing bytes) happens here, so both paths
    reject malformed documents identically.  Per-column digests are *not*
    checked — the caller decides when to pay for reading the payload bytes.
    """

    def fail(reason: str) -> DataError:
        return DataError(f"malformed {what}: {reason}")

    if len(view) < _HEADER.size:
        raise fail("shorter than the container header")
    magic, version, meta_length = _HEADER.unpack_from(view, 0)
    if magic != COLUMN_MAGIC:
        raise fail(f"bad magic {magic!r} (not a column container)")
    if version != _COLUMN_CONTAINER_VERSION:
        raise fail(
            f"unsupported column container version {version} "
            f"(this reader supports version {_COLUMN_CONTAINER_VERSION})"
        )
    offset = _HEADER.size
    if len(view) < offset + meta_length + _COLUMN_COUNT.size:
        raise fail("truncated metadata block")
    try:
        meta_text = bytes(view[offset : offset + meta_length]).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise fail(f"metadata is not valid UTF-8: {exc}") from exc
    meta = strict_json_loads(meta_text, what=f"malformed {what}: metadata")
    if not isinstance(meta, dict):
        raise fail("metadata must be a JSON object")
    offset += meta_length
    (count,) = _COLUMN_COUNT.unpack_from(view, offset)
    offset += _COLUMN_COUNT.size
    frames: list[_ColumnFrame] = []
    seen: set[str] = set()
    for _ in range(count):
        if len(view) < offset + _COLUMN_HEAD.size:
            raise fail("truncated column header")
        name_length, dtype_bytes, elements, digest = _COLUMN_HEAD.unpack_from(view, offset)
        offset += _COLUMN_HEAD.size
        dtype = dtype_bytes.decode("ascii", errors="replace")
        if dtype not in _COLUMN_DTYPES:
            raise fail(f"column dtype {dtype!r} is not in the supported set {_COLUMN_DTYPES}")
        nbytes = elements * 8
        if len(view) < offset + name_length + nbytes:
            raise fail("truncated column payload")
        try:
            name = bytes(view[offset : offset + name_length]).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise fail(f"column name is not valid UTF-8: {exc}") from exc
        offset += name_length
        if name in seen:
            raise fail(f"duplicate column {name!r}")
        seen.add(name)
        frames.append(
            _ColumnFrame(name=name, dtype=dtype, offset=offset, elements=elements, digest=digest)
        )
        offset += nbytes
    if offset != len(view):
        raise fail(f"{len(view) - offset} trailing bytes after the last column")
    return meta, frames


def encode_column_document(meta: dict, columns: dict[str, np.ndarray]) -> bytes:
    """Frame ``meta`` (strict JSON) and named 1-d arrays into one binary blob.

    Every column is written as explicit little-endian bytes with a per-column
    blake2b digest, so truncation and bit-rot surface as
    :class:`~repro.core.errors.DataError` on decode rather than as silently
    wrong floats.  float64/int64 values are copied verbatim — the encode /
    decode pair is bit-exact by construction.
    """
    parts = [b""]  # placeholder for the header, filled last
    meta_bytes = strict_json_dumps(meta).encode("utf-8")
    parts.append(meta_bytes)
    parts.append(_COLUMN_COUNT.pack(len(columns)))
    for name, column in columns.items():
        array = np.asarray(column)
        if array.ndim != 1:
            raise DataError(f"column {name!r} must be one-dimensional, got shape {array.shape}")
        if array.dtype.kind == "f":
            array = array.astype("<f8", copy=False)
            dtype = b"<f8"
        elif array.dtype.kind in ("i", "u"):
            array = array.astype("<i8", copy=False)
            dtype = b"<i8"
        else:
            raise DataError(f"column {name!r} has unsupported dtype {array.dtype}")
        name_bytes = name.encode("utf-8")
        payload = array.tobytes()
        parts.append(_COLUMN_HEAD.pack(len(name_bytes), dtype, array.size, _column_digest(payload)))
        parts.append(name_bytes)
        parts.append(payload)
    parts[0] = _HEADER.pack(COLUMN_MAGIC, _COLUMN_CONTAINER_VERSION, len(meta_bytes))
    return b"".join(parts)


def is_column_document(data: bytes) -> bool:
    """Whether ``data`` starts like a column container (vs a v1 JSON document)."""
    return data[: len(COLUMN_MAGIC)] == COLUMN_MAGIC


def decode_column_document(data: bytes, *, what: str = "column document") -> tuple[dict, dict[str, np.ndarray]]:
    """Decode :func:`encode_column_document` output back into (meta, columns).

    Rejects — always as :class:`~repro.core.errors.DataError` naming ``what``
    — wrong magic, unknown container versions, truncated frames, non-JSON
    metadata, out-of-whitelist dtypes and per-column checksum mismatches.
    Returned arrays are fresh, writable copies (decoding never aliases the
    input buffer).  Each column materialises as exactly one allocation: the
    digest is hashed over a view of the input and the array copied straight
    out of it, never through an intermediate ``bytes`` payload (which used to
    double the per-column peak).
    """
    view = memoryview(data)
    meta, frames = _walk_frames(view, what=what)
    columns: dict[str, np.ndarray] = {}
    for frame in frames:
        payload = view[frame.offset : frame.offset + frame.nbytes]
        if _column_digest(payload) != frame.digest:
            raise DataError(f"malformed {what}: column {frame.name!r} failed its checksum")
        columns[frame.name] = np.frombuffer(payload, dtype=frame.dtype).copy()
    return meta, columns


class ColumnDocumentReader:
    """Zero-copy streaming reader over one on-disk column document.

    The document is ``mmap``-ed read-only and its header and frame offsets
    validated up front (same structural checks as
    :func:`decode_column_document`), but **no payload bytes are read** until a
    column is touched: :meth:`column` returns a read-only ndarray *view* over
    the map, verifying that column's blake2b digest on first access (pages
    fault in as the hash and the consumer walk them; nothing is ever held
    twice).  :meth:`verify` performs the eager whole-document check the
    ``verify --deep`` paths want.

    Views alias the mapping, so they remain valid for the reader's lifetime —
    and keep the mapping alive afterwards (``close`` releases the reader's own
    reference; the OS unmaps once the last view is garbage-collected).  Use as
    a context manager for scoped reads.
    """

    def __init__(self, path: str | FilePath, *, what: str = "column document") -> None:
        self._path = FilePath(path)
        self._what = what
        try:
            with open(self._path, "rb") as handle:
                # Map read-only: views must not be able to rewrite the store
                # (and a shared writable map would let one reader corrupt
                # every other's verified columns).
                self._map = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except FileNotFoundError as exc:
            raise DataError(f"column document file not found: {self._path}") from exc
        except ValueError as exc:
            # mmap refuses empty files; an empty document is malformed anyway.
            raise DataError(f"malformed {what}: shorter than the container header") from exc
        self._view = memoryview(self._map)
        try:
            meta, frames = _walk_frames(self._view, what=what)
        except DataError:
            self.close()
            raise
        self._meta = meta
        self._frames = {frame.name: frame for frame in frames}
        self._verified: set[str] = set()
        self._arrays: dict[str, np.ndarray] = {}

    # -- introspection ------------------------------------------------- #
    @property
    def path(self) -> FilePath:
        return self._path

    @property
    def meta(self) -> dict:
        """The document's strict-JSON metadata header (parsed at open)."""
        return self._meta

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._frames)

    @property
    def size_bytes(self) -> int:
        """The mapped document's total size (no payload read)."""
        return len(self._view)

    def column_nbytes(self, name: str) -> int:
        """One column's payload size in bytes, from the frame header alone."""
        return self._frame(name).nbytes

    # -- reading ------------------------------------------------------- #
    def _frame(self, name: str) -> _ColumnFrame:
        try:
            return self._frames[name]
        except KeyError as exc:
            raise DataError(
                f"malformed {self._what}: no column named {name!r} "
                f"(document holds {sorted(self._frames)})"
            ) from exc

    def column(self, name: str) -> np.ndarray:
        """A read-only ndarray view of one column, digest-verified on first touch."""
        frame = self._frame(name)
        if name not in self._verified:
            payload = self._view[frame.offset : frame.offset + frame.nbytes]
            if _column_digest(payload) != frame.digest:
                raise DataError(
                    f"malformed {self._what}: column {name!r} failed its checksum"
                )
            self._verified.add(name)
        array = self._arrays.get(name)
        if array is None:
            # The map is ACCESS_READ, so frombuffer yields a non-writeable
            # array aliasing the page cache — decode copies nothing.
            array = np.frombuffer(
                self._view, dtype=frame.dtype, count=frame.elements, offset=frame.offset
            )
            self._arrays[name] = array
        return array

    def columns(self) -> dict[str, np.ndarray]:
        """Every column as a verified read-only view (faults the whole document in)."""
        return {name: self.column(name) for name in self._frames}

    def verify(self) -> None:
        """Eagerly digest-verify every column (the ``verify --deep`` path)."""
        for name in self._frames:
            self.column(name)

    def checksum(self) -> str:
        """blake2b-16 hexdigest of the whole document, hashed over the map.

        Matches :func:`repro.persistence.store.checksum_bytes` without ever
        materialising the file bytes as a Python object — pages stream through
        the hash and stay evictable page cache.
        """
        return hashlib.blake2b(self._view, digest_size=16).hexdigest()

    # -- lifecycle ----------------------------------------------------- #
    def close(self) -> None:
        """Release the reader's reference to the mapping.

        Outstanding column views keep the underlying map alive (the mmap
        object refuses to unmap while buffers are exported); the mapping is
        released when the last view goes away.
        """
        self._arrays = {}
        try:
            self._view.release()
            self._map.close()
        except BufferError:
            # A caller still holds column views; refcounting unmaps later.
            pass

    def __enter__(self) -> "ColumnDocumentReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def open_column_document(
    path: str | FilePath, *, what: str = "column document", verify: bool = False
) -> ColumnDocumentReader:
    """Open a :class:`ColumnDocumentReader` over ``path``.

    ``verify=True`` digest-checks every column before returning (eager mode
    for the deep-verification paths); the default defers each column's check
    to its first touch.
    """
    reader = ColumnDocumentReader(path, what=what)
    if verify:
        try:
            reader.verify()
        except DataError:
            reader.close()
            raise
    return reader


def split_ragged_column(values: np.ndarray, counts: np.ndarray, *, what: str) -> list:
    """Split a concatenated value column back into per-entry python lists.

    The column container's encoding for ragged structures is one flat value
    column plus an aligned per-entry count column; every v2 reader (index
    weights/T-paths/V-paths, heuristic table rows) decodes through this one
    helper so the length-consistency check lives in a single place.
    """
    if counts.size == 0:
        if values.size:
            raise DataError(
                f"malformed column document: {what} holds {values.size} values "
                "but its count column is empty"
            )
        return []
    boundaries = np.cumsum(counts)
    if values.size != boundaries[-1]:
        raise DataError(
            f"malformed column document: {what} holds {values.size} values "
            f"but the counts sum to {int(boundaries[-1])}"
        )
    return [chunk.tolist() for chunk in np.split(values, boundaries[:-1])]


# --------------------------------------------------------------------------- #
# Distributions
# --------------------------------------------------------------------------- #


def distribution_to_dict(distribution: Distribution) -> dict:
    """Encode a cost distribution as ``{"costs": [...], "probabilities": [...]}``.

    Values are coerced to plain Python floats so that array-backed
    distributions stay JSON-serialisable even if a NumPy scalar ever leaks
    into the public tuples.
    """
    return {
        "costs": [float(cost) for cost in distribution.support],
        "probabilities": [float(probability) for probability in distribution.probabilities],
    }


def distribution_from_sequences(
    costs: Sequence[float], probabilities: Sequence[float]
) -> Distribution:
    """Restore a distribution from parallel cost/probability sequences.

    Well-formed writer output (sorted support, positive probabilities summing
    to one) is restored *exactly* — no renormalisation — so that persisting
    and re-loading a graph preserves its content fingerprint bit for bit.
    Sequences that only approximately normalise fall back to the lenient
    constructor, which rescales.  Shared by the v1 JSON and the v2 columnar
    index readers.
    """
    if len(costs) != len(probabilities):
        raise DataError("distribution payload has mismatched costs/probabilities lengths")
    try:
        return Distribution.from_normalised(costs, probabilities)
    except (DistributionError, TypeError, ValueError):
        # Not exactly-normalised writer output; the lenient constructor
        # rescales (and raises the taxonomy's DistributionError on garbage).
        return Distribution(zip(costs, probabilities), normalise=True)


def distribution_from_dict(payload: dict) -> Distribution:
    """Decode a distribution encoded by :func:`distribution_to_dict`."""
    try:
        costs = payload["costs"]
        probabilities = payload["probabilities"]
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed distribution payload: {payload!r}") from exc
    return distribution_from_sequences(costs, probabilities)


def joint_to_dict(joint: JointDistribution) -> dict:
    """Encode a joint distribution as edge ids plus (cost-vector, probability) outcomes."""
    return {
        "edge_ids": list(joint.edge_ids),
        "outcomes": [
            {"costs": list(costs), "probability": probability} for costs, probability in joint.items()
        ],
    }


def joint_from_sequences(
    edge_ids: Sequence[int], items: Sequence[tuple[tuple[float, ...], float]]
) -> JointDistribution:
    """Restore a joint distribution from its edge ids and (costs, p) items.

    Like :func:`distribution_from_sequences`, exactly-normalised writer output
    restores the original floats (fingerprint-preserving);
    approximately-normalised input falls back to the rescaling constructor.
    ``items`` must be a list — a corrupted document with the same cost vector
    twice must reach ``from_normalised``'s duplicate check (and the lenient
    fallback's accumulation) instead of last-wins collapsing.
    """
    try:
        return JointDistribution.from_normalised(edge_ids, items)
    except (JointDistributionError, TypeError, ValueError):
        return JointDistribution(edge_ids, items, normalise=True)


def joint_from_dict(payload: dict) -> JointDistribution:
    """Decode a joint distribution encoded by :func:`joint_to_dict`."""
    try:
        edge_ids = payload["edge_ids"]
        outcomes = payload["outcomes"]
        items = [(tuple(entry["costs"]), entry["probability"]) for entry in outcomes]
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed joint distribution payload: {payload!r}") from exc
    return joint_from_sequences(edge_ids, items)
