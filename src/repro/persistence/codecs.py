"""JSON codecs for distributions and joint distributions.

The offline/online split of the paper only pays off if the offline artefacts
(the PACE graph, the V-paths, the heuristic tables) can be stored and loaded
by the online routing service.  This module provides the low-level codecs for
the probabilistic values; :mod:`repro.persistence.index` and
:mod:`repro.persistence.heuristics` build the document formats on top.

All formats are plain JSON-serialisable dictionaries: human-inspectable,
diff-able and free of pickle's code-execution hazards.
"""

from __future__ import annotations

from repro.core.distributions import Distribution
from repro.core.errors import DataError, DistributionError, JointDistributionError
from repro.core.joint import JointDistribution

__all__ = [
    "require_format_version",
    "distribution_to_dict",
    "distribution_from_dict",
    "joint_to_dict",
    "joint_from_dict",
]


def require_format_version(payload: dict, *, expected: int, what: str) -> int:
    """Validate a document's ``format_version`` field against ``expected``.

    Every persisted document in this package carries a ``format_version`` so
    readers can refuse documents written by a newer (or corrupted) writer
    instead of mis-parsing them.  Raises :class:`~repro.core.errors.DataError`
    naming the offending version, the supported version and the document kind;
    a missing or non-integer field is rejected with its own message rather
    than being silently treated as version 0.  Returns the validated version.
    """
    try:
        version = payload["format_version"]
    except (KeyError, TypeError) as exc:
        raise DataError(f"{what} carries no format_version field") from exc
    if not isinstance(version, int) or isinstance(version, bool):
        raise DataError(
            f"{what} format_version must be an integer, got {version!r}"
        )
    if version != expected:
        raise DataError(
            f"unsupported {what} format version {version} "
            f"(this reader supports version {expected}); "
            "re-export the document with a matching writer"
        )
    return version


def distribution_to_dict(distribution: Distribution) -> dict:
    """Encode a cost distribution as ``{"costs": [...], "probabilities": [...]}``.

    Values are coerced to plain Python floats so that array-backed
    distributions stay JSON-serialisable even if a NumPy scalar ever leaks
    into the public tuples.
    """
    return {
        "costs": [float(cost) for cost in distribution.support],
        "probabilities": [float(probability) for probability in distribution.probabilities],
    }


def distribution_from_dict(payload: dict) -> Distribution:
    """Decode a distribution encoded by :func:`distribution_to_dict`.

    Well-formed documents (sorted support, positive probabilities summing to
    one) are restored *exactly* — no renormalisation — so that persisting and
    re-loading a graph preserves its content fingerprint bit for bit.
    Payloads that only approximately normalise fall back to the lenient
    constructor, which rescales.
    """
    try:
        costs = payload["costs"]
        probabilities = payload["probabilities"]
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed distribution payload: {payload!r}") from exc
    if len(costs) != len(probabilities):
        raise DataError("distribution payload has mismatched costs/probabilities lengths")
    try:
        return Distribution.from_normalised(costs, probabilities)
    except (DistributionError, TypeError, ValueError):
        # Not exactly-normalised writer output; the lenient constructor
        # rescales (and raises the taxonomy's DistributionError on garbage).
        return Distribution(zip(costs, probabilities), normalise=True)


def joint_to_dict(joint: JointDistribution) -> dict:
    """Encode a joint distribution as edge ids plus (cost-vector, probability) outcomes."""
    return {
        "edge_ids": list(joint.edge_ids),
        "outcomes": [
            {"costs": list(costs), "probability": probability} for costs, probability in joint.items()
        ],
    }


def joint_from_dict(payload: dict) -> JointDistribution:
    """Decode a joint distribution encoded by :func:`joint_to_dict`.

    Like :func:`distribution_from_dict`, exactly-normalised documents restore
    the original floats (fingerprint-preserving); approximately-normalised
    ones fall back to the rescaling constructor.
    """
    try:
        edge_ids = payload["edge_ids"]
        outcomes = payload["outcomes"]
        # A list, not a dict comprehension: a corrupted document with the same
        # cost vector twice must reach from_normalised's duplicate check (and
        # the lenient fallback's accumulation) instead of last-wins collapsing.
        items = [(tuple(entry["costs"]), entry["probability"]) for entry in outcomes]
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed joint distribution payload: {payload!r}") from exc
    try:
        return JointDistribution.from_normalised(edge_ids, items)
    except (JointDistributionError, TypeError, ValueError):
        return JointDistribution(edge_ids, items, normalise=True)
