"""JSON codecs for distributions and joint distributions.

The offline/online split of the paper only pays off if the offline artefacts
(the PACE graph, the V-paths, the heuristic tables) can be stored and loaded
by the online routing service.  This module provides the low-level codecs for
the probabilistic values; :mod:`repro.persistence.index` and
:mod:`repro.persistence.heuristics` build the document formats on top.

All formats are plain JSON-serialisable dictionaries: human-inspectable,
diff-able and free of pickle's code-execution hazards.
"""

from __future__ import annotations

from repro.core.distributions import Distribution
from repro.core.errors import DataError
from repro.core.joint import JointDistribution

__all__ = [
    "distribution_to_dict",
    "distribution_from_dict",
    "joint_to_dict",
    "joint_from_dict",
]


def distribution_to_dict(distribution: Distribution) -> dict:
    """Encode a cost distribution as ``{"costs": [...], "probabilities": [...]}``.

    Values are coerced to plain Python floats so that array-backed
    distributions stay JSON-serialisable even if a NumPy scalar ever leaks
    into the public tuples.
    """
    return {
        "costs": [float(cost) for cost in distribution.support],
        "probabilities": [float(probability) for probability in distribution.probabilities],
    }


def distribution_from_dict(payload: dict) -> Distribution:
    """Decode a distribution encoded by :func:`distribution_to_dict`."""
    try:
        costs = payload["costs"]
        probabilities = payload["probabilities"]
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed distribution payload: {payload!r}") from exc
    if len(costs) != len(probabilities):
        raise DataError("distribution payload has mismatched costs/probabilities lengths")
    return Distribution(zip(costs, probabilities), normalise=True)


def joint_to_dict(joint: JointDistribution) -> dict:
    """Encode a joint distribution as edge ids plus (cost-vector, probability) outcomes."""
    return {
        "edge_ids": list(joint.edge_ids),
        "outcomes": [
            {"costs": list(costs), "probability": probability} for costs, probability in joint.items()
        ],
    }


def joint_from_dict(payload: dict) -> JointDistribution:
    """Decode a joint distribution encoded by :func:`joint_to_dict`."""
    try:
        edge_ids = payload["edge_ids"]
        outcomes = payload["outcomes"]
        pmf = {tuple(entry["costs"]): entry["probability"] for entry in outcomes}
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed joint distribution payload: {payload!r}") from exc
    return JointDistribution(edge_ids, pmf, normalise=True)
