"""Stochastic routing in the edge-centric (EDGE) model.

The paper's speed-up techniques exist to bring the PACE model's routing cost
down to (and below) what the classical EDGE model achieves with
stochastic-dominance pruning.  This router implements that classical
algorithm — best-first exploration by arrival probability with convolution
costs, dominance pruning and budget pruning — both as a reference point and
as the substrate behind the T-B-E heuristic intuition.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

from repro.core.edge_graph import EdgeGraph
from repro.core.errors import ConfigurationError
from repro.network.algorithms import single_source_costs
from repro.routing.dominance import DominancePruner
from repro.routing.queries import RoutingQuery, RoutingResult

__all__ = ["EdgeRouterConfig", "EdgeModelRouter"]


@dataclass(frozen=True)
class EdgeRouterConfig:
    """Limits and knobs of the EDGE-model router."""

    max_support: int = 64
    max_explored: int = 100000
    use_dominance: bool = True

    def validate(self) -> None:
        if self.max_support < 1:
            raise ConfigurationError("max_support must be positive")
        if self.max_explored < 1:
            raise ConfigurationError("max_explored must be positive")


class EdgeModelRouter:
    """Arriving-on-time routing under the EDGE model with dominance pruning."""

    method_name = "EDGE"

    def __init__(self, edge_graph: EdgeGraph, config: EdgeRouterConfig | None = None):
        self._graph = edge_graph
        self._config = config or EdgeRouterConfig()
        self._config.validate()
        self._min_cost_cache: dict[int, dict[int, float]] = {}

    def _min_costs_to(self, destination: int) -> dict[int, float]:
        """Minimum remaining cost to the destination for every vertex (budget pruning)."""
        if destination not in self._min_cost_cache:
            reversed_network = self._graph.network.reversed()
            self._min_cost_cache[destination] = single_source_costs(
                reversed_network,
                destination,
                lambda edge: self._graph.weight(edge.edge_id).min(),
            )
        return self._min_cost_cache[destination]

    def route(self, query: RoutingQuery) -> RoutingResult:
        """Evaluate one arriving-on-time query in the EDGE model."""
        start = time.perf_counter()
        graph = self._graph
        budget = query.budget
        min_to_destination = self._min_costs_to(query.destination)
        pruner = DominancePruner() if self._config.use_dominance else None
        candidate_ids = itertools.count()
        heap = []
        explored = 0

        def remaining(vertex: int) -> float:
            return min_to_destination.get(vertex, float("inf"))

        def push(path, distribution) -> None:
            candidate_id = next(candidate_ids)
            if pruner is not None and not pruner.admit(candidate_id, path.target, distribution):
                return
            priority = -distribution.prob_at_most(budget)
            heapq.heappush(heap, (priority, candidate_id, path, distribution))

        for element in graph.outgoing_elements(query.source):
            if element.distribution.min() + remaining(element.target) > budget:
                continue
            push(element.path, element.distribution)

        best_path, best_prob, best_distribution = None, 0.0, None
        while heap and explored < self._config.max_explored:
            negative_probability, candidate_id, path, distribution = heapq.heappop(heap)
            if pruner is not None and pruner.is_pruned(candidate_id):
                continue
            explored += 1
            if path.target == query.destination:
                # The priority (probability of the candidate itself) can only shrink when
                # the path is extended, so the first destination pop is optimal.
                best_path = path
                best_prob = -negative_probability
                best_distribution = distribution
                break
            for element in graph.outgoing_elements(path.target):
                if any(path.visits(v) for v in element.path.vertices[1:]):
                    continue
                if (
                    distribution.min() + element.distribution.min() + remaining(element.target)
                    > budget
                ):
                    continue
                new_path = path.concat(element.path)
                new_distribution = distribution.convolve(
                    element.distribution, max_support=self._config.max_support
                )
                push(new_path, new_distribution)

        return RoutingResult(
            query=query,
            method=self.method_name,
            path=best_path,
            probability=best_prob,
            distribution=best_distribution,
            explored=explored,
            runtime_seconds=time.perf_counter() - start,
        )
