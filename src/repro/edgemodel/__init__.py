"""Routing in the classical edge-centric (EDGE) model."""

from repro.edgemodel.routing import EdgeModelRouter, EdgeRouterConfig

__all__ = ["EdgeModelRouter", "EdgeRouterConfig"]
