"""Time-dependent PACE models (peak vs. off-peak hours).

The paper builds two uncertain graphs per network, one from trajectories
departing in peak hours (7:00–8:30 and 16:00–17:30) and one from the rest,
and routes against the graph matching the query's departure time.  This
module wraps that convention.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.core.pace_graph import PaceGraph
from repro.network.road_network import RoadNetwork
from repro.tpaths.extraction import TPathMinerConfig, build_pace_graph
from repro.trajectories.model import OFF_PEAK, PEAK, TimeRegime, Trajectory
from repro.trajectories.splits import split_by_regime

__all__ = ["TimeDependentPaceIndex", "build_time_dependent_index"]


@dataclass(frozen=True)
class TimeDependentPaceIndex:
    """PACE graphs per time regime, selected by departure time."""

    regimes: tuple[TimeRegime, ...]
    graphs: dict[str, PaceGraph]

    def graph_for(self, departure_time: float) -> PaceGraph:
        """The PACE graph whose regime contains the departure time."""
        for regime in self.regimes:
            if regime.contains(departure_time):
                return self.graphs[regime.name]
        raise ConfigurationError(
            f"departure time {departure_time!r} is not covered by any regime"
        )

    def graph_named(self, regime_name: str) -> PaceGraph:
        """The PACE graph for a regime by name (``"peak"`` / ``"off-peak"``)."""
        try:
            return self.graphs[regime_name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown regime {regime_name!r}") from exc


def build_time_dependent_index(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    config: TPathMinerConfig | None = None,
    *,
    regimes: Sequence[TimeRegime] = (PEAK, OFF_PEAK),
) -> TimeDependentPaceIndex:
    """Split trajectories by regime and build one PACE graph per regime."""
    grouped = split_by_regime(list(trajectories), list(regimes))
    graphs: dict[str, PaceGraph] = {}
    for regime in regimes:
        graphs[regime.name] = build_pace_graph(network, grouped[regime.name], config)
    return TimeDependentPaceIndex(regimes=tuple(regimes), graphs=graphs)
