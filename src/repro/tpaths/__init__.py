"""T-path mining and PACE-model construction from trajectories."""

from repro.tpaths.extraction import (
    MinedTPath,
    TPathMinerConfig,
    build_edge_graph,
    build_pace_graph,
    mine_tpaths,
)
from repro.tpaths.time_dependent import TimeDependentPaceIndex, build_time_dependent_index

__all__ = [
    "TPathMinerConfig",
    "MinedTPath",
    "mine_tpaths",
    "build_edge_graph",
    "build_pace_graph",
    "TimeDependentPaceIndex",
    "build_time_dependent_index",
]
