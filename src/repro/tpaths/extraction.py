"""Mining T-paths (trajectory paths) from a trajectory set.

A T-path is a path that has been traversed by at least ``τ`` trajectories
(Section 2.2 of the paper).  For every T-path the PACE model maintains the
joint distribution over its per-edge costs, estimated directly from the
(non-split) trajectory costs, which preserves the dependency among the edges.

This module provides:

* :func:`mine_tpaths` — enumerate every sub-path with at least ``τ``
  traversals and estimate its joint distribution,
* :func:`build_edge_graph` — instantiate the EDGE model (edge weights from
  the split trajectory pieces, free-flow fallback for uncovered edges), and
* :func:`build_pace_graph` — instantiate the full PACE model (edge weights
  plus multi-edge T-paths).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.distributions import Distribution
from repro.core.edge_graph import EdgeGraph
from repro.core.errors import ConfigurationError
from repro.core.joint import JointDistribution
from repro.core.pace_graph import PaceGraph
from repro.network.road_network import RoadNetwork
from repro.trajectories.model import Trajectory

__all__ = ["TPathMinerConfig", "MinedTPath", "mine_tpaths", "build_edge_graph", "build_pace_graph"]


@dataclass(frozen=True)
class TPathMinerConfig:
    """Parameters controlling T-path mining.

    Attributes
    ----------
    tau:
        Minimum number of traversals a path needs to become a T-path (the
        paper's threshold ``τ``; default 50, its default as well).
    max_cardinality:
        Upper bound on the number of edges of a mined T-path.  The paper does
        not bound this explicitly, but in practice trajectory support decays
        quickly with length; bounding it keeps mining polynomial and is the
        lever the repro uses to stay laptop-sized.
    resolution:
        Histogram bin width (in cost units, i.e. seconds) for the estimated
        distributions.
    min_edge_support:
        Minimum number of traversals for an edge to receive an empirical
        distribution; below this the edge keeps its free-flow fallback.
    """

    tau: int = 50
    max_cardinality: int = 4
    resolution: float = 5.0
    min_edge_support: int = 3

    def validate(self) -> None:
        if self.tau < 1:
            raise ConfigurationError("tau must be at least 1")
        if self.max_cardinality < 1:
            raise ConfigurationError("max_cardinality must be at least 1")
        if self.resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        if self.min_edge_support < 1:
            raise ConfigurationError("min_edge_support must be at least 1")


@dataclass(frozen=True)
class MinedTPath:
    """One mined T-path: edge sequence, trajectory support, and estimated joint."""

    edge_ids: tuple[int, ...]
    support: int
    joint: JointDistribution

    @property
    def cardinality(self) -> int:
        return len(self.edge_ids)


def _collect_subpath_samples(
    trajectories: Sequence[Trajectory], max_cardinality: int
) -> dict[tuple[int, ...], list[tuple[float, ...]]]:
    """Per sub-path (edge-id tuple), the list of per-edge cost vectors observed."""
    samples: dict[tuple[int, ...], list[tuple[float, ...]]] = {}
    for trajectory in trajectories:
        edges = trajectory.path.edges
        costs = trajectory.edge_costs
        n = len(edges)
        for start in range(n):
            upper = min(max_cardinality, n - start)
            for length in range(1, upper + 1):
                key = edges[start : start + length]
                samples.setdefault(key, []).append(costs[start : start + length])
    return samples


def mine_tpaths(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    config: TPathMinerConfig | None = None,
) -> list[MinedTPath]:
    """Mine every sub-path traversed by at least ``τ`` trajectories.

    Single-edge "T-paths" are included (they refine the edge weights); callers
    that only care about multi-edge T-paths can filter on ``cardinality``.
    """
    config = config or TPathMinerConfig()
    config.validate()
    samples = _collect_subpath_samples(trajectories, config.max_cardinality)
    mined: list[MinedTPath] = []
    for edge_ids, vectors in samples.items():
        if len(vectors) < config.tau:
            continue
        joint = JointDistribution.from_samples(edge_ids, vectors, resolution=config.resolution)
        mined.append(MinedTPath(edge_ids=edge_ids, support=len(vectors), joint=joint))
    mined.sort(key=lambda t: (t.cardinality, t.edge_ids))
    return mined


def build_edge_graph(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    config: TPathMinerConfig | None = None,
) -> EdgeGraph:
    """Instantiate the EDGE model: per-edge empirical distributions, free-flow fallback.

    This is the "split the trajectories to fit edges" estimation the paper
    describes for the edge-centric model; dependencies between edges are lost
    by construction.
    """
    config = config or TPathMinerConfig()
    config.validate()
    per_edge: dict[int, list[float]] = {}
    for trajectory in trajectories:
        for edge_id, cost in zip(trajectory.path.edges, trajectory.edge_costs):
            per_edge.setdefault(edge_id, []).append(cost)
    weights = {
        edge_id: Distribution.from_samples(costs, resolution=config.resolution)
        for edge_id, costs in per_edge.items()
        if len(costs) >= config.min_edge_support
    }
    return EdgeGraph(network, weights, fill_uncovered=True)


def build_pace_graph(
    network: RoadNetwork,
    trajectories: Sequence[Trajectory],
    config: TPathMinerConfig | None = None,
) -> PaceGraph:
    """Instantiate the PACE model: the EDGE weights plus all multi-edge T-paths."""
    config = config or TPathMinerConfig()
    config.validate()
    edge_graph = build_edge_graph(network, trajectories, config)
    pace = PaceGraph(edge_graph, tau=config.tau)
    for mined in mine_tpaths(network, trajectories, config):
        if mined.cardinality < 2:
            continue
        path = network.path_from_edge_ids(mined.edge_ids)
        if not path.is_simple():
            continue
        pace.add_tpath(path, mined.joint, support=mined.support)
    return pace
