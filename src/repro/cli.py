"""Command-line interface: ``python -m repro <command>``.

The CLI wraps the most common workflows so the system can be exercised
without writing Python:

* ``stats``           — generate (or load) a dataset and print its Table-7 statistics,
* ``build``           — run the offline pipeline (T-path mining, V-path closure) and
  report index sizes,
* ``build-artifacts`` — run the offline pipeline **and persist everything** (index,
  optionally prewarmed heuristics, manifest with fingerprints and provenance)
  into a content-addressed artifact store directory; heuristic tables are
  built to convergence by default (they are served forever, so they should be
  tight), in the columnar v2 format unless ``--format v1`` asks for the
  original JSON documents,
* ``migrate-artifacts`` — rewrite an existing store in another format in place
  (v1 JSON -> v2 columnar, or back), preserving fingerprints, recipe and
  provenance without re-mining,
* ``prewarm``         — build the heuristics of a method for a set of destinations
  and persist them to a bundle file — or, with ``--artifacts``, into the
  artifact store itself,
* ``route``           — answer a single arriving-on-time query with a chosen method,
  optionally prewarming its heuristics from such a bundle instead of
  rebuilding them,
* ``route-batch``     — answer a JSONL file of requests through the typed service
  API, over a chosen execution backend (serial, threads, or a multiprocess
  worker pool), writing one JSON response per line, and
* ``serve``           — run the long-lived fault-tolerant HTTP serving tier
  (:mod:`repro.serving`) over an artifact store: ``POST /route`` with admission
  control and per-request deadlines, ``GET /stats`` / ``GET /healthz``, hot
  reload when the store is republished, and an opt-in fault-injection
  switchboard for chaos drills,
* ``bench``           — run one experiment driver (by figure/table name) and print
  its rows, and
* ``analyze``         — run the project's own AST lint (:mod:`repro.analysis`) over
  source trees, exiting non-zero on violations; this is the ``repro analyze``
  gate the CI ``analysis`` job runs against ``src/repro``.

The serving commands (``prewarm``, ``route``, ``route-batch``) accept
``--artifacts <dir>`` to boot the engine from a persisted store instead of
re-mining — the deployment path: mine once with ``build-artifacts``, then
cold-start engines (and, under ``--backend process``, every worker) from disk
in seconds.  ``--artifacts`` takes precedence over ``--dataset``/``--tau``/
``--regime``, which are ignored when it is given; ``--max-budget`` sizes a
re-mine, so combining it with ``--artifacts`` is rejected (the store's
manifest already records the settings its tables were built for).

``--method`` accepts any name :meth:`repro.routing.MethodSpec.parse`
understands — the paper's fixed palette plus arbitrary-δ budget methods like
``T-BS-240``.  All commands operate on the bundled synthetic datasets
(``aalborg-like``, ``xian-like``, ``tiny``) so they work out of the box and
deterministically.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Sequence
from pathlib import Path as FilePath

from repro.analysis import all_rules, analyze_paths, render_json, render_text
from repro.core.errors import ConfigurationError, DataError
from repro.datasets.synthetic import DATASET_NAMES, SyntheticDataset, dataset_by_name
from repro.evaluation.experiments import (
    ExperimentContext,
    ExperimentScale,
    fig10a_tpath_counts,
    fig10b_accuracy,
    fig10cd_vpaths,
    fig11_binary_precompute,
    fig12_budget_precompute,
    fig19_case_study,
    table7_data_statistics,
    table8_binary_precompute_total,
    table9_budget_precompute_total,
    table10_method_comparison,
)
from repro.evaluation.reporting import render_report
from repro.routing import (
    METHOD_NAMES,
    DatasetRecipe,
    MethodSpec,
    ProcessBackend,
    RouterSettings,
    RoutingEngine,
    RoutingQuery,
    RoutingService,
    SerialBackend,
    ThreadBackend,
)
from repro.routing.service import RouteResponse
from repro.tpaths import TPathMinerConfig, build_pace_graph
from repro.vpaths import UpdatedPaceGraph

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table7": lambda ctx: table7_data_statistics([ctx.dataset]),
    "fig10a": fig10a_tpath_counts,
    "fig10b": fig10b_accuracy,
    "fig10cd": fig10cd_vpaths,
    "fig11": fig11_binary_precompute,
    "fig12": fig12_budget_precompute,
    "table8": table8_binary_precompute_total,
    "table9": table9_budget_precompute_total,
    "table10": table10_method_comparison,
    "fig19": fig19_case_study,
}

_BACKENDS = ("serial", "thread", "process")

#: CLI names of the artifact store formats (see repro.persistence.store).
_STORE_FORMATS = {"v1": 1, "v2": 2}


def _load_dataset(name: str) -> SyntheticDataset:
    try:
        return dataset_by_name(name)
    except KeyError as exc:
        raise SystemExit(str(exc)) from exc


def _method_name(value: str) -> str:
    """argparse type for ``--method``: any name MethodSpec parses, canonicalised."""
    try:
        return MethodSpec.parse(value).canonical_name
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


class _FlattenIds(argparse.Action):
    """Concatenate the per-argument id lists ``_destination_ids`` produces."""

    def __call__(self, parser, namespace, values, option_string=None):
        ids = list(getattr(namespace, self.dest) or [])
        for chunk in values:
            ids.extend(chunk)
        setattr(namespace, self.dest, ids)


def _destination_ids(value: str) -> list[int]:
    """argparse type for ``--destinations``: vertex ids, comma- or space-separated.

    ``--destinations 3,7,12`` and ``--destinations 3 7 12`` (and mixtures)
    are equivalent; the :class:`_FlattenIds` action concatenates every chunk
    into one flat id list.
    """
    ids: list[int] = []
    for chunk in value.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            ids.append(int(chunk))
        except ValueError as exc:
            raise argparse.ArgumentTypeError(
                f"destination ids must be integers, got {chunk!r}"
            ) from exc
    if not ids:
        raise argparse.ArgumentTypeError("empty destination list")
    return ids


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path-centric stochastic routing (PACE) — reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    method_help = (
        f"routing method ({', '.join(METHOD_NAMES)}; "
        "T-BS-<delta> / V-BS-<delta> accept any positive delta)"
    )

    stats = subparsers.add_parser("stats", help="print Table-7 statistics of a dataset")
    stats.add_argument("--dataset", default="tiny", choices=list(DATASET_NAMES))

    build = subparsers.add_parser("build", help="build the PACE index and report its size")
    build.add_argument("--dataset", default="tiny", choices=list(DATASET_NAMES))
    build.add_argument("--tau", type=int, default=30, help="T-path trajectory threshold")
    build.add_argument("--regime", default="peak", choices=["peak", "off-peak"])

    build_artifacts = subparsers.add_parser(
        "build-artifacts",
        help="run the offline pipeline and persist it to an artifact store directory",
        description=(
            "Mine the PACE index (T-paths + V-path closure), optionally pre-compute "
            "heuristics for hot destinations, and write everything into a "
            "content-addressed artifact store: index, heuristic bundle and a manifest "
            "recording graph fingerprints, router settings and build provenance.  "
            "Serving commands then boot from the store with --artifacts, skipping "
            "re-mining entirely."
        ),
    )
    build_artifacts.add_argument("--dataset", default="tiny", choices=list(DATASET_NAMES))
    build_artifacts.add_argument("--out", required=True, help="artifact store directory")
    build_artifacts.add_argument("--tau", type=int, default=20)
    build_artifacts.add_argument("--regime", default="peak", choices=["peak", "off-peak"])
    build_artifacts.add_argument(
        "--method",
        action="append",
        type=_method_name,
        default=None,
        help=f"prewarm this method's heuristics (repeatable; {method_help})",
    )
    build_artifacts.add_argument(
        "--destinations",
        type=_destination_ids,
        action=_FlattenIds,
        nargs="+",
        default=None,
        help=(
            "destination vertex ids to prewarm, space- and/or comma-separated "
            "(default: all vertices when --method given)"
        ),
    )
    build_artifacts.add_argument(
        "--max-budget", type=float, default=600.0, help="largest budget the tables must answer"
    )
    build_artifacts.add_argument(
        "--max-explored", type=int, default=100000, help="search expansion cap recorded in settings"
    )
    build_artifacts.add_argument(
        "--sweeps",
        type=int,
        default=None,
        help=(
            "cap the Eq. 5 Bellman sweeps per budget table (default: run to the "
            "fixpoint — artifact tables are built once and served forever, so they "
            "should be converged)"
        ),
    )
    build_artifacts.add_argument(
        "--format",
        default="v2",
        choices=list(_STORE_FORMATS),
        help=(
            "artifact format: v2 (default) writes the columnar binary index and one "
            "addressable document per heuristic table; v1 writes the original "
            "monolithic JSON documents"
        ),
    )
    build_artifacts.add_argument(
        "--catalog",
        default=None,
        help="register the finished store into this fleet catalog database",
    )

    migrate = subparsers.add_parser(
        "migrate-artifacts",
        help="rewrite an artifact store in another format, in place",
        description=(
            "Boot an engine from an existing artifact store (any supported format), "
            "then re-save index, heuristics and manifest in the requested format in "
            "place.  The graph content fingerprints, recipe and build provenance "
            "are preserved; v1 JSON stores become v2 columnar stores (smaller, "
            "individually addressable heuristic tables) without re-mining anything."
        ),
    )
    migrate.add_argument("store", help="artifact store directory")
    migrate.add_argument(
        "--format",
        default="v2",
        choices=list(_STORE_FORMATS),
        help="target artifact format (default: v2 columnar)",
    )

    prewarm = subparsers.add_parser(
        "prewarm", help="pre-compute heuristics for destinations and save them to a bundle"
    )
    prewarm.add_argument("--dataset", default="tiny", choices=list(DATASET_NAMES))
    prewarm.add_argument("--method", default="V-BS-60", type=_method_name, help=method_help)
    prewarm.add_argument(
        "--destinations",
        type=_destination_ids,
        action=_FlattenIds,
        nargs="+",
        required=True,
        help="destination vertex ids (space- and/or comma-separated: '3 7' or '3,7,12')",
    )
    prewarm.add_argument(
        "--out",
        default=None,
        help="bundle file to write (required unless --artifacts updates the store in place)",
    )
    prewarm.add_argument("--tau", type=int, default=20)
    prewarm.add_argument("--regime", default="peak", choices=["peak", "off-peak"])
    prewarm.add_argument(
        "--max-budget",
        type=float,
        default=None,
        help=(
            "largest budget the tables must answer (default 600; with --artifacts "
            "the store's recorded settings apply and this flag is rejected)"
        ),
    )
    prewarm.add_argument(
        "--artifacts",
        default=None,
        help=(
            "artifact store to boot the engine from; newly built heuristics are "
            "saved back into the store (and to --out when given)"
        ),
    )

    route = subparsers.add_parser("route", help="answer one arriving-on-time query")
    route.add_argument("--dataset", default="tiny", choices=list(DATASET_NAMES))
    route.add_argument("--method", default="V-BS-60", type=_method_name, help=method_help)
    route.add_argument("--source", type=int, required=True)
    route.add_argument("--destination", type=int, required=True)
    route.add_argument("--budget", type=float, required=True, help="travel-time budget in seconds")
    route.add_argument("--tau", type=int, default=20)
    route.add_argument("--regime", default="peak", choices=["peak", "off-peak"])
    route.add_argument(
        "--heuristics",
        default=None,
        help="heuristic bundle (from 'prewarm') to load instead of rebuilding",
    )
    route.add_argument(
        "--artifacts",
        default=None,
        help="artifact store (from 'build-artifacts') to boot the engine from",
    )

    batch = subparsers.add_parser(
        "route-batch",
        help="answer a JSONL file of route requests through the service API",
        description=(
            "Read one JSON route request per line ({\"source\": .., \"destination\": .., "
            "\"budget\": .., optional \"departure_time\"/\"method\"/\"request_id\"}), "
            "answer them through the typed RoutingService over the chosen execution "
            "backend, and write one JSON response per line, in input order.  Malformed "
            "lines produce structured invalid_request responses instead of aborting "
            "the batch."
        ),
    )
    batch.add_argument("--dataset", default="tiny", choices=list(DATASET_NAMES))
    batch.add_argument("--method", default="V-BS-60", type=_method_name, help=method_help)
    batch.add_argument("--input", required=True, help="JSONL request file ('-' for stdin)")
    batch.add_argument("--output", default="-", help="JSONL response file ('-' for stdout)")
    batch.add_argument(
        "--backend",
        default="serial",
        choices=list(_BACKENDS),
        help="execution backend for the batch",
    )
    batch.add_argument(
        "--workers", type=int, default=4, help="worker count for the thread/process backends"
    )
    batch.add_argument("--tau", type=int, default=20)
    batch.add_argument("--regime", default="peak", choices=["peak", "off-peak"])
    batch.add_argument(
        "--heuristics",
        default=None,
        help=(
            "heuristic bundle (from 'prewarm') loaded into the engine — and, with "
            "--backend process, into every worker"
        ),
    )
    batch.add_argument(
        "--max-budget",
        type=float,
        default=None,
        help=(
            "largest budget the tables must answer (default 600; with --artifacts "
            "the store's recorded settings apply and this flag is rejected)"
        ),
    )
    batch.add_argument(
        "--artifacts",
        default=None,
        help=(
            "artifact store (from 'build-artifacts') to boot the engine from — and, "
            "with --backend process, every worker (fingerprint-verified, zero rebuilds)"
        ),
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve routing over HTTP from an artifact store, fault-tolerantly",
        description=(
            "Boot a routing engine from a persisted artifact store and serve it over "
            "a long-lived strict-JSON HTTP API: POST /route (single request object "
            "or an array), GET /stats, GET /healthz.  The server admits at most "
            "--max-concurrency + --queue-limit requests at a time (the rest are "
            "rejected immediately with a structured 'overloaded' error and a "
            "retry_after_ms hint), enforces a per-request deadline budget "
            "(--deadline-ms, tightened per request via 'deadline_ms'), survives "
            "worker-pool crashes by falling back to in-process routing while "
            "respawning the pool with exponential backoff, and hot-reloads the "
            "engine — without dropping in-flight requests — when the artifact "
            "store's manifest changes on disk."
        ),
    )
    serve.add_argument(
        "--artifacts",
        default=None,
        help=(
            "artifact store directory to serve (or pick one from --catalog by "
            "--graph-fingerprint instead)"
        ),
    )
    serve.add_argument(
        "--catalog",
        default=None,
        help=(
            "fleet catalog database; with --artifacts the served store is "
            "registered into it, without --artifacts the store to serve is "
            "looked up in it (freshest non-stale match wins)"
        ),
    )
    serve.add_argument(
        "--graph-fingerprint",
        default=None,
        help="with --catalog: serve a store matching this graph content fingerprint",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="listening port (0 = ephemeral)")
    serve.add_argument("--method", default="V-BS-60", type=_method_name, help=method_help)
    serve.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "process"),
        help="execution backend for routing batches (process = resilient worker pool)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="worker count for --backend process"
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=4, help="requests routed concurrently"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="admitted requests allowed to wait beyond --max-concurrency",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=10_000.0,
        help="default per-request deadline budget in milliseconds",
    )
    serve.add_argument(
        "--reload-poll-seconds",
        type=float,
        default=2.0,
        help="how often to check the store manifest for a republished build",
    )
    serve.add_argument(
        "--enable-fault-injection",
        action="store_true",
        help="expose POST /faults for deterministic chaos drills (off by default)",
    )
    serve.add_argument(
        "--prewarm",
        default="all",
        choices=("all", "none"),
        help=(
            "heuristic residency at boot: 'all' eagerly loads every persisted "
            "table (classic boot), 'none' starts empty and faults tables in "
            "from the store on first touch (country-scale boot)"
        ),
    )
    serve.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help=(
            "byte budget for resident heuristics (LRU eviction above it; "
            "default: unbounded)"
        ),
    )

    catalog = subparsers.add_parser(
        "catalog",
        help="manage a SQLite fleet catalog over many artifact stores",
        description=(
            "Register artifact store directories into one catalog.sqlite and answer "
            "fleet questions over it: which stores serve a graph fingerprint, which "
            "still carry format-version-1 artifacts, which drifted since their last "
            "sync.  Batch jobs (migrate --all) record per-store progress in the "
            "catalog, so a killed run resumes with --resume instead of restarting.  "
            "The stores stay the source of truth; the catalog is a rebuildable index."
        ),
    )
    catalog_db = argparse.ArgumentParser(add_help=False)
    catalog_db.add_argument(
        "--db", default="catalog.sqlite", help="catalog database file (default: ./catalog.sqlite)"
    )
    report_format = argparse.ArgumentParser(add_help=False)
    report_format.add_argument(
        "--format", choices=("text", "json"), default="text", dest="report_format",
        help="report format (default: text)",
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)

    cat_register = catalog_sub.add_parser(
        "register", parents=[catalog_db],
        help="register (or re-sync) artifact store directories",
    )
    cat_register.add_argument("stores", nargs="+", help="artifact store directories")

    cat_sync = catalog_sub.add_parser(
        "sync", parents=[catalog_db],
        help="re-read registered stores and refresh their catalog rows",
    )
    cat_sync.add_argument(
        "stores", nargs="*", help="store directories to sync (default: every registered store)"
    )

    catalog_sub.add_parser(
        "list", parents=[catalog_db, report_format], help="list the registered stores"
    )

    cat_query = catalog_sub.add_parser(
        "query", parents=[catalog_db, report_format],
        help="find stores by graph fingerprint, artifact format version or staleness",
    )
    cat_query.add_argument(
        "--graph-fingerprint", default=None,
        help="stores whose PACE or V-path-closure fingerprint matches",
    )
    cat_query.add_argument(
        "--format-version", type=int, default=None,
        help="stores holding ANY artifact at this format version",
    )
    cat_query.add_argument("--dataset", default=None, help="stores mined from this dataset")
    cat_query.add_argument(
        "--stale", action="store_true",
        help="only stores whose on-disk manifest changed (or vanished) since the last sync",
    )

    cat_verify = catalog_sub.add_parser(
        "verify", parents=[catalog_db, report_format],
        help="check every registered store's files against the catalog records",
    )
    cat_verify.add_argument(
        "--deep", action="store_true",
        help="re-read every artifact and verify its checksum (full read cost)",
    )

    cat_migrate = catalog_sub.add_parser(
        "migrate", parents=[catalog_db],
        help="convert stores to another artifact format, resumably",
    )
    cat_migrate.add_argument(
        "--to", default="v2", choices=list(_STORE_FORMATS),
        help="target artifact format (default: v2 columnar)",
    )
    scope = cat_migrate.add_mutually_exclusive_group(required=True)
    scope.add_argument(
        "--all", action="store_true", dest="all_stores",
        help="migrate every registered store",
    )
    scope.add_argument("--stores", nargs="+", default=None, help="store directories to migrate")
    cat_migrate.add_argument(
        "--resume", action="store_true",
        help="resume the matching unfinished operation instead of starting a new one",
    )

    cat_unregister = catalog_sub.add_parser(
        "unregister", parents=[catalog_db], help="drop stores from the catalog"
    )
    cat_unregister.add_argument("stores", nargs="+", help="store directories to drop")

    cat_gc = catalog_sub.add_parser(
        "gc", parents=[catalog_db, report_format],
        help="collect vanished-store rows and stray unregistered store directories",
        description=(
            "Garbage-collect fleet drift in both directions: registered stores whose "
            "directory no longer holds a manifest lose their catalog rows, and — with "
            "--root — store directories on disk that no catalog row points at are "
            "deleted.  Dry run by default; pass --apply to act."
        ),
    )
    cat_gc.add_argument(
        "--root", default=None,
        help="also scan this directory tree for unregistered store directories",
    )
    cat_gc.add_argument(
        "--apply", action="store_true",
        help="actually unregister/delete (default: report what would be collected)",
    )

    bench = subparsers.add_parser("bench", help="run one experiment driver and print its rows")
    bench.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    bench.add_argument("--dataset", default="tiny", choices=list(DATASET_NAMES))

    analyze = subparsers.add_parser(
        "analyze",
        help="run the project's AST lint rules; non-zero exit on violations",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: the installed repro package)",
    )
    analyze.add_argument(
        "--format", choices=("text", "json"), default="text", dest="report_format",
        help="report format (default: text)",
    )
    analyze.add_argument(
        "--output", default="-",
        help="write the report to this file instead of stdout",
    )
    analyze.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all registered rules)",
    )
    analyze.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _command_stats(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    statistics = dataset.statistics()
    print(render_report(f"Data statistics: {dataset.name}", ("metric", "value"), statistics.as_rows()))
    return 0


def _command_build(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    trajectories = list(dataset.regime(args.regime))
    pace = build_pace_graph(
        dataset.network, trajectories, TPathMinerConfig(tau=args.tau, resolution=5.0)
    )
    updated, stats = UpdatedPaceGraph.build(pace)
    rows = [
        ("regime", args.regime),
        ("trajectories", len(trajectories)),
        ("tau", args.tau),
        ("T-paths", pace.num_tpaths),
        ("V-paths", stats.count),
        ("V-path build (s)", round(stats.build_seconds, 3)),
        ("avg out-degree (G_p+)", round(updated.average_out_degree(), 2)),
        ("max out-degree (G_p+)", updated.max_out_degree()),
    ]
    print(render_report(f"PACE index: {dataset.name}", ("property", "value"), rows))
    return 0


def _build_engine(args: argparse.Namespace, max_budget: float) -> RoutingEngine:
    # With --artifacts the engine cold-boots from the persisted store (its
    # manifest carries the settings the artifacts were built for); otherwise
    # it is built from a recipe, so the multiprocess backend can hand the same
    # recipe to its workers (content fingerprints verify the rebuild).
    if getattr(args, "artifacts", None):
        try:
            return RoutingEngine.from_artifacts(args.artifacts)
        except DataError as exc:
            # Exit 2 (operational error), distinct from route's exit 1
            # ("query answered, no route found") so scripts can branch.
            print(f"error: {exc}", file=sys.stderr)
            raise SystemExit(2) from exc
    recipe = DatasetRecipe(dataset=args.dataset, regime=args.regime, tau=args.tau)
    return recipe.build_engine(settings=RouterSettings(max_budget=max_budget))


def _command_build_artifacts(args: argparse.Namespace) -> int:
    recipe = DatasetRecipe(dataset=args.dataset, regime=args.regime, tau=args.tau)
    settings = RouterSettings(
        max_budget=args.max_budget,
        max_explored=args.max_explored,
        heuristic_sweeps=args.sweeps,  # None = run Eq. 5 to its fixpoint
    )
    started = time.perf_counter()
    engine = recipe.build_engine(settings=settings)
    mine_seconds = time.perf_counter() - started
    methods = args.method or []
    destinations = args.destinations
    if destinations is None and methods:
        destinations = sorted(engine.pace_graph.network.vertex_ids())
    built = 0
    for method in methods:
        try:
            built += engine.prewarm(method, destinations)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    manifest = engine.save_artifacts(
        args.out,
        provenance={"builder": "repro build-artifacts", "mine_seconds": round(mine_seconds, 3)},
        format_version=_STORE_FORMATS[args.format],
    )
    catalogued = None
    if args.catalog:
        from repro.catalog import CatalogDB, register_store

        try:
            with CatalogDB(args.catalog) as db:
                catalogued = register_store(db, args.out).path
        except DataError as exc:
            # The store itself was written fine; a broken catalog is an
            # operational error the caller must notice.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    rows = [
        ("store", args.out),
        ("format", args.format),
        ("pace fingerprint", manifest.fingerprints["pace"]),
        ("updated fingerprint", manifest.fingerprints.get("updated") or "-"),
        ("mine (s)", round(mine_seconds, 2)),
        ("heuristics prewarmed", built),
        ("heuristic sweeps", "converged" if args.sweeps is None else args.sweeps),
        ("artifacts", " ".join(sorted(manifest.artifacts))),
    ]
    if catalogued is not None:
        rows.append(("catalog", f"{args.catalog} <- {catalogued}"))
    print(render_report(f"Artifact store: {args.dataset}", ("property", "value"), rows))
    return 0


def _command_migrate_artifacts(args: argparse.Namespace) -> int:
    from repro.persistence.store import HEURISTICS_ARTIFACT, INDEX_ARTIFACT, ArtifactStore

    target = _STORE_FORMATS[args.format]
    try:
        store = ArtifactStore.open(args.store)
        before = store.manifest
        before_format = before.artifacts[INDEX_ARTIFACT].format_version
        before_bytes = sum(entry.size_bytes for entry in before.artifacts.values())
        # Count without decoding payloads: the per-entry layout counts from
        # the manifest alone, the v1 bundle is one cheap JSON parse.  The
        # engine boot below is the only pass that decodes every document.
        if before.heuristic_entry_names():
            before_entries = len(before.heuristic_entry_names())
        elif HEURISTICS_ARTIFACT in before.artifacts:
            before_entries = len(store.load_heuristic_entries())
        else:
            before_entries = 0
        # Booting with the manifest's own settings loads every persisted
        # heuristic, so the re-save carries all of them into the new format
        # (and preserves recipe + build provenance through the engine).
        engine = RoutingEngine.from_artifacts(store)
        manifest = engine.save_artifacts(store, format_version=target)
    except DataError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    after_bytes = sum(entry.size_bytes for entry in manifest.artifacts.values())
    after_entries = manifest.provenance.get("heuristic_entries", 0)
    rows = [
        ("store", args.store),
        ("format", f"v{before_format} -> v{target}"),
        ("artifact bytes", f"{before_bytes} -> {after_bytes}"),
        ("heuristic entries", f"{before_entries} -> {after_entries}"),
        ("pace fingerprint", manifest.fingerprints["pace"]),
    ]
    if after_entries < before_entries:
        # The engine could not serve some persisted entries (e.g. floor-built
        # tables, which are inadmissible).  What happened to them depends on
        # whether *any* entry loaded: an empty cache re-save carries the old
        # heuristic documents over verbatim (still the old format), a partial
        # one re-writes only the loaded entries and drops the rest.
        missing = before_entries - after_entries
        if after_entries == 0 and (
            HEURISTICS_ARTIFACT in manifest.artifacts or manifest.heuristic_entry_names()
        ):
            print(
                f"warning: none of the {before_entries} persisted heuristic entries "
                "could be loaded for serving; they were kept on disk unchanged (in "
                "their original format), so the heuristics were NOT migrated — "
                "rebuild them with 'repro prewarm --artifacts' to convert them",
                file=sys.stderr,
            )
        else:
            print(
                f"warning: {missing} persisted heuristic entries could not be loaded "
                "for serving (e.g. floor-built tables, which are inadmissible) and "
                "were dropped; rebuild them with 'repro prewarm --artifacts'",
                file=sys.stderr,
            )
    print(render_report("Migrated artifact store", ("property", "value"), rows))
    return 0


def _reject_max_budget_with_artifacts(args: argparse.Namespace) -> bool:
    """``--max-budget`` sizes a re-mine; a store's settings are already fixed."""
    if args.artifacts and args.max_budget is not None:
        print(
            "error: --max-budget cannot be combined with --artifacts (the store's "
            "manifest records the settings its tables were built for); rebuild the "
            "store via 'repro build-artifacts --max-budget ...' to grow coverage",
            file=sys.stderr,
        )
        return True
    return False


def _command_prewarm(args: argparse.Namespace) -> int:
    if not args.out and not args.artifacts:
        print("error: prewarm needs --out and/or --artifacts to persist into", file=sys.stderr)
        return 2
    if _reject_max_budget_with_artifacts(args):
        return 2
    engine = _build_engine(args, args.max_budget if args.max_budget is not None else 600.0)
    try:
        built = engine.prewarm(args.method, args.destinations)
    except ConfigurationError as exc:
        # e.g. a heuristic-free method (T-None / V-None): nothing to prewarm.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        ("method", args.method),
        ("destinations", " ".join(str(d) for d in args.destinations)),
        ("heuristics built", built),
    ]
    if args.out:
        saved = engine.save_heuristics(args.out)
        rows += [("bundle entries", saved), ("bundle file", args.out)]
    if args.artifacts:
        manifest = engine.save_artifacts(args.artifacts)
        rows += [
            ("store entries", manifest.provenance.get("heuristic_entries")),
            ("store", args.artifacts),
        ]
    source = args.artifacts if args.artifacts else args.dataset
    print(render_report(f"Prewarmed heuristics: {source}", ("property", "value"), rows))
    return 0


def _command_route(args: argparse.Namespace) -> int:
    max_budget = max(600.0, 2 * args.budget)
    engine = _build_engine(args, max_budget)
    spec = MethodSpec.parse(args.method)
    if spec.heuristic == "budget" and args.budget > engine.settings.max_budget:
        # Only reachable with --artifacts (the re-mine path sizes max_budget to
        # the query); tables below the budget would clamp and under-estimate.
        print(
            f"error: budget {args.budget:g} exceeds the artifact store's heuristic-table "
            f"coverage (max_budget {engine.settings.max_budget:g}); rebuild the store "
            "with a larger --max-budget or use a binary-heuristic method",
            file=sys.stderr,
        )
        return 2
    if args.heuristics:
        loaded = engine.prewarm(args.heuristics)
        print(f"prewarmed {loaded} heuristics from {args.heuristics}")
        if loaded == 0:
            print(
                "warning: the bundle held no servable heuristics (budget tables "
                f"must cover max_budget={engine.settings.max_budget:g} — re-run "
                "prewarm with a larger --max-budget — and must be ceil-built); "
                "rebuilding from scratch"
            )
    result = engine.route(
        RoutingQuery(source=args.source, destination=args.destination, budget=args.budget),
        method=args.method,
    )
    print(result.summary())
    if result.found:
        print("route vertices:", " -> ".join(str(v) for v in result.path.vertices))
        return 0
    return 1


def _make_backend(args: argparse.Namespace):
    if args.backend == "thread":
        return ThreadBackend(workers=args.workers)
    if args.backend == "process":
        return ProcessBackend(workers=args.workers, heuristics_path=args.heuristics)
    return SerialBackend()


def _read_jsonl_requests(handle) -> list[dict | RouteResponse]:
    """Parse request lines; undecodable lines become ready-made error responses."""
    items: list[dict | RouteResponse] = []
    for number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            items.append(json.loads(line))
        except json.JSONDecodeError as exc:
            items.append(
                RouteResponse.failure("invalid_request", f"line {number} is not JSON: {exc}")
            )
    return items


def _command_route_batch(args: argparse.Namespace) -> int:
    if _reject_max_budget_with_artifacts(args):
        return 2
    engine = _build_engine(args, args.max_budget if args.max_budget is not None else 600.0)
    if args.heuristics:
        loaded = engine.prewarm(args.heuristics)
        print(f"prewarmed {loaded} heuristics from {args.heuristics}", file=sys.stderr)
    service = RoutingService(engine, default_method=args.method)
    backend = _make_backend(args)

    if args.input == "-":
        items = _read_jsonl_requests(sys.stdin)
    else:
        with open(args.input, "r", encoding="utf-8") as handle:
            items = _read_jsonl_requests(handle)

    payloads = [item for item in items if not isinstance(item, RouteResponse)]
    try:
        answered = iter(service.handle_batch(payloads, backend=backend))
        responses = [
            item if isinstance(item, RouteResponse) else next(answered) for item in items
        ]
    finally:
        if isinstance(backend, ProcessBackend):
            backend.close()

    lines = [json.dumps(response.to_dict(), allow_nan=False) for response in responses]
    if args.output == "-":
        for line in lines:
            print(line)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
    failures = sum(1 for response in responses if not response.ok)
    print(
        f"route-batch: {len(responses)} responses ({len(responses) - failures} ok, "
        f"{failures} errors) via {args.backend} backend",
        file=sys.stderr,
    )
    # Mirror `route`: success only when every request was answered ok, so
    # shell pipelines can gate on the exit code.
    return 0 if failures == 0 else 1


def _resolve_serve_store(args: argparse.Namespace) -> str:
    """Which store ``repro serve`` boots from: ``--artifacts`` or a catalog pick.

    With ``--artifacts`` the path is served as given (and registered into
    ``--catalog`` when one is supplied, so the fleet knows about it).  Without
    it, ``--catalog`` is searched — optionally narrowed by
    ``--graph-fingerprint`` — and the freshest non-stale store wins; raises
    :class:`DataError` when nothing servable matches.
    """
    from repro.catalog import CatalogDB, find_stores, register_store, store_staleness

    if args.artifacts:
        if args.catalog:
            with CatalogDB(args.catalog) as db:
                register_store(db, args.artifacts)
        return str(args.artifacts)
    if not args.catalog:
        raise DataError("serve needs --artifacts, or --catalog to pick a store from")
    with CatalogDB(args.catalog, create=False) as db:
        records = find_stores(db, graph_fingerprint=args.graph_fingerprint)
    fresh = [record for record in records if store_staleness(record) is None]
    if not fresh:
        wanted = (
            f"graph fingerprint {args.graph_fingerprint}"
            if args.graph_fingerprint
            else "any graph"
        )
        raise DataError(
            f"catalog {args.catalog} has no fresh store for {wanted} "
            f"({len(records)} registered match(es), all stale or missing); "
            "run 'repro catalog sync' and retry"
        )
    # Freshest sync first; ties broken by path for determinism.
    fresh.sort(key=lambda record: (record.last_synced_at, record.path), reverse=True)
    return fresh[0].path


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serving import RouteServer, ServerConfig

    try:
        store_root = _resolve_serve_store(args)
        config = ServerConfig(
            host=args.host,
            port=args.port,
            default_method=args.method,
            backend=args.backend,
            workers=args.workers,
            max_concurrency=args.max_concurrency,
            queue_limit=args.queue_limit,
            default_deadline_ms=args.deadline_ms,
            reload_poll_seconds=args.reload_poll_seconds,
            enable_fault_injection=args.enable_fault_injection,
            prewarm=args.prewarm,
            cache_bytes=args.cache_bytes,
        )
        server = RouteServer(store_root, config)
    except (ConfigurationError, DataError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server.start()
    host, port = server.address
    endpoints = "POST /route, GET /stats, GET /healthz"
    if args.enable_fault_injection:
        endpoints += ", POST /faults"
    print(f"repro serve: listening on http://{host}:{port} (store: {store_root})")
    print(f"endpoints: {endpoints}")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _short(fingerprint: str | None) -> str:
    """Fingerprints are 32 hex chars; reports show a readable prefix."""
    return "-" if fingerprint is None else fingerprint[:12]


def _catalog_register(args: argparse.Namespace) -> int:
    from repro.catalog import CatalogDB, register_store

    rows = []
    with CatalogDB(args.db) as db:
        for store in args.stores:
            record = register_store(db, store)
            rows.append((record.path, f"v{record.format_version}", _short(record.pace_fingerprint)))
    print(render_report(f"Registered stores: {args.db}", ("path", "format", "pace"), rows))
    return 0


def _catalog_sync(args: argparse.Namespace) -> int:
    from repro.catalog import CatalogDB, sync_all, sync_store

    rows = []
    failures = 0
    with CatalogDB(args.db, create=False) as db:
        if args.stores:
            for store in args.stores:
                record, changed = sync_store(db, store)
                rows.append((record.path, "updated" if changed else "unchanged"))
        else:
            synced, errors = sync_all(db)
            for record, changed in synced:
                rows.append((record.path, "updated" if changed else "unchanged"))
            for path, message in errors:
                rows.append((path, f"FAILED: {message}"))
                failures += 1
    print(render_report(f"Synced stores: {args.db}", ("path", "result"), rows))
    # Unreadable stores are a per-store domain failure (the sync itself ran);
    # scripts branch on 1 vs the catalog-is-broken exit 2.
    return 1 if failures else 0


def _render_store_rows(records, staleness_by_path: dict | None = None) -> list:
    rows = []
    for record in records:
        staleness = None if staleness_by_path is None else staleness_by_path.get(record.path)
        rows.append(
            (
                record.path,
                f"v{record.format_version}",
                record.dataset or "-",
                _short(record.pace_fingerprint),
                # The fault tier an engine can draw on: how many persisted
                # heuristic documents, and the store's on-disk footprint
                # (live resident bytes / faults / evictions are per serving
                # process — GET /stats surfaces those).
                record.heuristic_documents,
                _human_bytes(record.total_bytes),
                record.last_synced_at,
                staleness or "fresh",
            )
        )
    return rows


def _human_bytes(count: int) -> str:
    """Bytes as a compact fixed-unit figure for report columns."""
    if count >= 1_000_000:
        return f"{count / 1_000_000:.1f}MB"
    if count >= 1_000:
        return f"{count / 1_000:.1f}kB"
    return f"{count}B"


_STORE_COLUMNS = ("path", "format", "dataset", "pace", "heur", "bytes", "synced", "state")


def _print_records(args: argparse.Namespace, title: str, records, staleness=None) -> None:
    if args.report_format == "json":
        payload = []
        for record in records:
            entry = record.to_dict()
            if staleness is not None:
                entry["staleness"] = staleness.get(record.path)
            payload.append(entry)
        print(json.dumps(payload, indent=2, allow_nan=False))
        return
    print(render_report(title, _STORE_COLUMNS, _render_store_rows(records, staleness)))


def _catalog_list(args: argparse.Namespace) -> int:
    from repro.catalog import CatalogDB, list_stores, store_staleness

    with CatalogDB(args.db, create=False) as db:
        records = list_stores(db)
    staleness = {record.path: store_staleness(record) for record in records}
    _print_records(args, f"Catalog: {args.db}", records, staleness)
    return 0


def _catalog_query(args: argparse.Namespace) -> int:
    from repro.catalog import CatalogDB, find_stores, store_staleness

    with CatalogDB(args.db, create=False) as db:
        records = find_stores(
            db,
            graph_fingerprint=args.graph_fingerprint,
            format_version=args.format_version,
            dataset=args.dataset,
        )
    staleness = {record.path: store_staleness(record) for record in records}
    if args.stale:
        records = [record for record in records if staleness[record.path] is not None]
    _print_records(args, f"Catalog query: {args.db}", records, staleness)
    return 0


def _catalog_verify(args: argparse.Namespace) -> int:
    from repro.catalog import CatalogDB, verify_fleet

    with CatalogDB(args.db, create=False) as db:
        results = verify_fleet(db, deep=args.deep)
    if args.report_format == "json":
        print(json.dumps([result.to_dict() for result in results], indent=2, allow_nan=False))
    else:
        rows = [
            (result.path, result.status, "; ".join(result.problems) or "-")
            for result in results
        ]
        print(render_report(f"Catalog verify: {args.db}", ("path", "status", "problems"), rows))
    return 0 if all(result.ok for result in results) else 1


def _catalog_migrate(args: argparse.Namespace) -> int:
    from repro.catalog import (
        CatalogDB,
        create_operation,
        find_resumable,
        get_store,
        list_stores,
        migrate_worker,
        run_operation,
    )

    target = _STORE_FORMATS[args.to]
    parameters: dict = {"to": target}
    with CatalogDB(args.db, create=False) as db:
        if args.all_stores:
            targets = list_stores(db)
        else:
            targets = []
            for store in args.stores:
                record = get_store(db, store)
                if record is None:
                    print(
                        f"error: {store} is not registered in {args.db} "
                        "(run 'repro catalog register' first)",
                        file=sys.stderr,
                    )
                    return 2
                targets.append(record)
            parameters["stores"] = sorted(record.path for record in targets)
        operation = find_resumable(db, "migrate", parameters) if args.resume else None
        if operation is not None:
            done = len(operation.done_steps)
            print(
                f"resuming operation {operation.operation_id}: "
                f"{done}/{len(operation.steps)} stores already done",
                file=sys.stderr,
            )
        else:
            operation = create_operation(db, "migrate", parameters, targets)
        try:
            result = run_operation(
                db,
                operation,
                migrate_worker(target),
                on_step=lambda step: print(
                    f"  {step.path}: {step.status}"
                    + (f" ({step.detail})" if step.detail else "")
                    + (f" ({step.error})" if step.error else ""),
                    file=sys.stderr,
                ),
            )
        except KeyboardInterrupt:
            print(
                f"interrupted; finished stores are recorded — rerun with "
                f"--resume to continue operation {operation.operation_id}",
                file=sys.stderr,
            )
            return 130
    rows = [
        ("operation", result.operation_id),
        ("status", result.status),
        ("stores done", f"{len(result.done_steps)}/{len(result.steps)}"),
    ]
    for step in result.failed_steps:
        rows.append((step.path, f"FAILED: {step.error}"))
    print(render_report(f"Fleet migrate -> {args.to}", ("property", "value"), rows))
    return 0 if result.status == "done" else 1


def _catalog_gc(args: argparse.Namespace) -> int:
    from repro.catalog import CatalogDB, gc_fleet

    with CatalogDB(args.db, create=False) as db:
        actions = gc_fleet(db, root=args.root, apply=args.apply)
    if args.report_format == "json":
        print(json.dumps([action.to_dict() for action in actions], indent=2, allow_nan=False))
        return 0
    rows = [(action.path, action.kind, action.action) for action in actions] or [
        ("-", "-", "nothing to collect")
    ]
    suffix = "" if args.apply else " (dry run)"
    print(render_report(f"Catalog gc: {args.db}{suffix}", ("path", "kind", "action"), rows))
    return 0


def _catalog_unregister(args: argparse.Namespace) -> int:
    from repro.catalog import CatalogDB, unregister_store

    rows = []
    with CatalogDB(args.db, create=False) as db:
        for store in args.stores:
            dropped = unregister_store(db, store)
            rows.append((store, "dropped" if dropped else "not registered"))
    print(render_report(f"Unregistered stores: {args.db}", ("path", "result"), rows))
    return 0


_CATALOG_COMMANDS = {
    "register": _catalog_register,
    "sync": _catalog_sync,
    "list": _catalog_list,
    "query": _catalog_query,
    "verify": _catalog_verify,
    "migrate": _catalog_migrate,
    "unregister": _catalog_unregister,
    "gc": _catalog_gc,
}


def _command_catalog(args: argparse.Namespace) -> int:
    try:
        return _CATALOG_COMMANDS[args.catalog_command](args)
    except DataError as exc:
        # Catalog/store corruption is operational (exit 2), like every other
        # persistence failure surfaced through the CLI.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _command_bench(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    scale = ExperimentScale(
        taus=(15, 30), deltas=(60.0, 240.0), pairs_per_bucket=1, sample_destinations=2,
        max_explored=1000, accuracy_folds=3,
    )
    context = ExperimentContext.build(dataset, scale)
    report = _EXPERIMENTS[args.experiment](context)
    print(report.render())
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    """Run the repo's own static-analysis rules; exit 1 on violations, 2 on misuse."""
    registered = all_rules()
    if args.list_rules:
        for rule in registered:
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    rules = registered
    if args.rules is not None:
        by_id = {rule.rule_id: rule for rule in registered}
        selected = [token.strip() for token in args.rules.split(",") if token.strip()]
        unknown = sorted(set(selected) - set(by_id))
        if unknown or not selected:
            known = ", ".join(sorted(by_id))
            what = ", ".join(unknown) if unknown else "(empty selection)"
            print(f"error: unknown rule id(s) {what}; known rules: {known}", file=sys.stderr)
            return 2
        rules = [by_id[token] for token in dict.fromkeys(selected)]
    # Default target: the package this CLI shipped in, so `repro analyze`
    # with no arguments is the self-check CI runs.
    paths = args.paths or [str(FilePath(__file__).parent)]
    report = analyze_paths(paths, rules=rules)
    rendered = render_json(report) if args.report_format == "json" else render_text(report)
    if args.output == "-":
        print(rendered)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    return 0 if report.ok else 1


_COMMANDS = {
    "stats": _command_stats,
    "build": _command_build,
    "build-artifacts": _command_build_artifacts,
    "migrate-artifacts": _command_migrate_artifacts,
    "prewarm": _command_prewarm,
    "route": _command_route,
    "route-batch": _command_route_batch,
    "serve": _command_serve,
    "catalog": _command_catalog,
    "bench": _command_bench,
    "analyze": _command_analyze,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
