"""Fleet catalog: a SQLite index over many artifact stores.

``repro catalog`` registers :class:`~repro.persistence.store.ArtifactStore`
directories into one ``catalog.sqlite`` and answers fleet questions over it
— which stores serve a graph fingerprint, which still carry format-version-1
artifacts, which drifted since their last sync — plus resumable batch
operations (``migrate --all --resume``) whose per-store progress survives a
kill.  The blobs stay content-addressed files in the stores; the catalog is
a rebuildable index, never the source of truth.
"""

from repro.catalog.db import CatalogDB, utc_now_iso
from repro.catalog.fleet import (
    FleetOperation,
    OperationStep,
    StepWorker,
    create_operation,
    find_resumable,
    get_operation,
    list_operations,
    migrate_worker,
    mine_worker,
    prewarm_worker,
    run_operation,
)
from repro.catalog.registry import (
    GcAction,
    StoreRecord,
    StoreVerification,
    find_stores,
    find_unregistered_store_dirs,
    gc_fleet,
    get_store,
    get_store_by_id,
    list_stores,
    register_store,
    stale_stores,
    store_staleness,
    sync_all,
    sync_store,
    unregister_store,
    verify_fleet,
    verify_store,
)
from repro.catalog.schema import OPERATION_KINDS, SCHEMA_VERSION, STEP_STATUSES

__all__ = [
    "CatalogDB",
    "utc_now_iso",
    "SCHEMA_VERSION",
    "OPERATION_KINDS",
    "STEP_STATUSES",
    "StoreRecord",
    "StoreVerification",
    "register_store",
    "sync_store",
    "sync_all",
    "unregister_store",
    "list_stores",
    "get_store",
    "get_store_by_id",
    "find_stores",
    "store_staleness",
    "stale_stores",
    "verify_store",
    "verify_fleet",
    "GcAction",
    "find_unregistered_store_dirs",
    "gc_fleet",
    "FleetOperation",
    "OperationStep",
    "StepWorker",
    "create_operation",
    "get_operation",
    "list_operations",
    "find_resumable",
    "run_operation",
    "migrate_worker",
    "prewarm_worker",
    "mine_worker",
]
