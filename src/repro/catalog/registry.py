"""Registering, syncing and verifying artifact stores against the catalog.

The registry keeps the ``stores`` and ``artifacts`` tables truthful: a store
is registered once (by resolved path) and re-synced whenever it is
republished.  Sync reads the store's :class:`~repro.persistence.store.StoreSummary`
— the same one-manifest-read accessor the serving reloader polls — and
upserts everything in one transaction, so a concurrent reader sees either
the old rows or the new rows, never a half-synced store.

Because republishes can happen behind the catalog's back (a ``repro prewarm
--artifacts`` on another box, a manual rebuild), every row carries the
``manifest_fingerprint`` it was synced from.  :func:`store_staleness`
compares it with the bytes on disk right now — ``None`` (fresh),
``"drifted"`` (republished since the last sync) or ``"missing"`` (directory
or manifest gone) — and :func:`verify_store` deepens that into a
per-artifact check against the recorded checksums.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path as FilePath
from sqlite3 import Row

from repro.catalog.db import CatalogDB, utc_now_iso
from repro.core.errors import DataError
from repro.persistence.codecs import strict_json_dumps, strict_json_loads
from repro.persistence.store import (
    HEURISTIC_ENTRY_PREFIX,
    HEURISTICS_ARTIFACT,
    INDEX_ARTIFACT,
    MANIFEST_NAME,
    ArtifactStore,
    StoreSummary,
    checksum_bytes,
)

__all__ = [
    "StoreRecord",
    "StoreVerification",
    "GcAction",
    "register_store",
    "sync_store",
    "sync_all",
    "unregister_store",
    "list_stores",
    "get_store",
    "get_store_by_id",
    "find_stores",
    "store_staleness",
    "stale_stores",
    "verify_store",
    "verify_fleet",
    "find_unregistered_store_dirs",
    "gc_fleet",
]


@dataclass(frozen=True)
class StoreRecord:
    """One ``stores`` row, as the query functions return it."""

    store_id: int
    path: str
    manifest_fingerprint: str
    pace_fingerprint: str
    updated_fingerprint: str | None
    format_version: int
    dataset: str | None
    regime: str | None
    tau: int | None
    settings_digest: str
    max_budget: float | None
    heuristic_documents: int
    total_bytes: int
    provenance: dict
    registered_at: str
    last_synced_at: str

    def to_dict(self) -> dict:
        """JSON-ready form for ``repro catalog list/query --format json``."""
        return {
            "path": self.path,
            "manifest_fingerprint": self.manifest_fingerprint,
            "pace_fingerprint": self.pace_fingerprint,
            "updated_fingerprint": self.updated_fingerprint,
            "format_version": self.format_version,
            "dataset": self.dataset,
            "regime": self.regime,
            "tau": self.tau,
            "settings_digest": self.settings_digest,
            "max_budget": self.max_budget,
            "heuristic_documents": self.heuristic_documents,
            "total_bytes": self.total_bytes,
            "registered_at": self.registered_at,
            "last_synced_at": self.last_synced_at,
        }


@dataclass(frozen=True)
class StoreVerification:
    """The outcome of verifying one registered store against the disk."""

    path: str
    #: ``ok`` | ``drifted`` | ``missing`` | ``corrupt``
    status: str
    problems: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {"path": self.path, "status": self.status, "problems": list(self.problems)}


def _canonical_path(root: str | FilePath) -> str:
    return str(FilePath(root).resolve())


def _artifact_kind(name: str) -> str:
    if name == INDEX_ARTIFACT:
        return "index"
    if name == HEURISTICS_ARTIFACT:
        return "heuristic-bundle"
    if name.startswith(HEURISTIC_ENTRY_PREFIX):
        return "heuristic-entry"
    return "other"


def _recipe_str(recipe: dict | None, key: str) -> str | None:
    value = None if recipe is None else recipe.get(key)
    return value if isinstance(value, str) else None


def _recipe_int(recipe: dict | None, key: str) -> int | None:
    value = None if recipe is None else recipe.get(key)
    return int(value) if isinstance(value, (int, float)) else None


def _record_from_row(row: Row) -> StoreRecord:
    try:
        provenance = strict_json_loads(
            row["provenance"], what="catalog store provenance"
        )
    except DataError:
        provenance = {}
    if not isinstance(provenance, dict):
        provenance = {}
    return StoreRecord(
        store_id=int(row["store_id"]),
        path=str(row["path"]),
        manifest_fingerprint=str(row["manifest_fingerprint"]),
        pace_fingerprint=str(row["pace_fingerprint"]),
        updated_fingerprint=(
            None if row["updated_fingerprint"] is None else str(row["updated_fingerprint"])
        ),
        # The column mirrors a manifest whose version was validated at sync
        # time (ArtifactManifest.from_dict refuses unknown versions).
        format_version=int(row["format_version"]),  # repro: ignore[format-version]
        dataset=None if row["dataset"] is None else str(row["dataset"]),
        regime=None if row["regime"] is None else str(row["regime"]),
        tau=None if row["tau"] is None else int(row["tau"]),
        settings_digest=str(row["settings_digest"]),
        max_budget=None if row["max_budget"] is None else float(row["max_budget"]),
        heuristic_documents=int(row["heuristic_documents"]),
        total_bytes=int(row["total_bytes"]),
        provenance=provenance,
        registered_at=str(row["registered_at"]),
        last_synced_at=str(row["last_synced_at"]),
    )


def _upsert_store(db: CatalogDB, summary: StoreSummary, path: str) -> StoreRecord:
    """Write (or refresh) one store's rows in a single transaction."""
    now = utc_now_iso()
    recipe = summary.recipe
    max_budget = summary.settings.get("max_budget")
    columns = (
        summary.manifest_fingerprint,
        summary.pace_fingerprint,
        summary.updated_fingerprint,
        summary.index_format_version,
        _recipe_str(recipe, "dataset"),
        _recipe_str(recipe, "regime"),
        _recipe_int(recipe, "tau"),
        summary.settings_digest,
        float(max_budget) if isinstance(max_budget, (int, float)) else None,
        summary.heuristic_documents,
        summary.total_bytes,
        strict_json_dumps(summary.provenance, sort_keys=True),
        now,
    )
    with db.transaction():
        existing = db.query_one("SELECT store_id FROM stores WHERE path = ?", (path,))
        if existing is None:
            cursor = db.execute(
                """
                INSERT INTO stores (
                    path, manifest_fingerprint, pace_fingerprint, updated_fingerprint,
                    format_version, dataset, regime, tau, settings_digest, max_budget,
                    heuristic_documents, total_bytes, provenance, last_synced_at,
                    registered_at
                ) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                """,
                (path, *columns, now),
            )
            store_id = cursor.lastrowid
            if store_id is None:  # pragma: no cover - sqlite always assigns one
                raise DataError(f"catalog insert for {path} returned no row id")
        else:
            store_id = int(existing["store_id"])
            db.execute(
                """
                UPDATE stores SET
                    manifest_fingerprint = ?, pace_fingerprint = ?,
                    updated_fingerprint = ?, format_version = ?, dataset = ?,
                    regime = ?, tau = ?, settings_digest = ?, max_budget = ?,
                    heuristic_documents = ?, total_bytes = ?, provenance = ?,
                    last_synced_at = ?
                WHERE store_id = ?
                """,
                (*columns, store_id),
            )
        db.execute("DELETE FROM artifacts WHERE store_id = ?", (store_id,))
        for name in sorted(summary.artifacts):
            entry = summary.artifacts[name]
            db.execute(
                """
                INSERT INTO artifacts (
                    store_id, name, kind, filename, format_version, checksum, size_bytes
                ) VALUES (?, ?, ?, ?, ?, ?, ?)
                """,
                (
                    store_id,
                    name,
                    _artifact_kind(name),
                    entry.filename,
                    entry.format_version,
                    entry.checksum,
                    entry.size_bytes,
                ),
            )
    record = get_store_by_id(db, int(store_id))
    if record is None:  # pragma: no cover - the transaction above just wrote it
        raise DataError(f"catalog lost the row it just wrote for {path}")
    return record


def register_store(db: CatalogDB, root: str | FilePath) -> StoreRecord:
    """Register (or re-sync) one artifact store by path.

    Reads the store's manifest through :meth:`ArtifactStore.summary` — a
    missing or corrupt store raises :class:`DataError` and writes nothing.
    """
    path = _canonical_path(root)
    summary = ArtifactStore(path).summary()
    return _upsert_store(db, summary, path)


def sync_store(db: CatalogDB, root: str | FilePath) -> tuple[StoreRecord, bool]:
    """Refresh one registered store's rows; returns ``(record, changed)``.

    ``changed`` is ``True`` when the on-disk manifest fingerprint differed
    from the recorded one (the store was republished since the last sync).
    Unregistered paths are registered — sync is an upsert.
    """
    path = _canonical_path(root)
    previous = get_store(db, path)
    summary = ArtifactStore(path).summary()
    record = _upsert_store(db, summary, path)
    changed = previous is None or previous.manifest_fingerprint != record.manifest_fingerprint
    return record, changed


def sync_all(db: CatalogDB) -> tuple[list[tuple[StoreRecord, bool]], list[tuple[str, str]]]:
    """Sync every registered store; returns ``(synced, errors)``.

    ``errors`` holds ``(path, message)`` for stores that could not be read
    (missing directory, corrupt manifest) — their rows are left as they
    were, so ``query --stale`` can still surface them.
    """
    synced: list[tuple[StoreRecord, bool]] = []
    errors: list[tuple[str, str]] = []
    for record in list_stores(db):
        try:
            synced.append(sync_store(db, record.path))
        except DataError as exc:
            errors.append((record.path, str(exc)))
    return synced, errors


def unregister_store(db: CatalogDB, root: str | FilePath) -> bool:
    """Drop a store's rows (cascading to artifacts and operation steps)."""
    path = _canonical_path(root)
    with db.transaction():
        cursor = db.execute("DELETE FROM stores WHERE path = ?", (path,))
        return cursor.rowcount > 0


def list_stores(db: CatalogDB) -> list[StoreRecord]:
    """Every registered store, ordered by path for stable output."""
    rows = db.query("SELECT * FROM stores ORDER BY path")
    return [_record_from_row(row) for row in rows]


def get_store(db: CatalogDB, root: str | FilePath) -> StoreRecord | None:
    row = db.query_one("SELECT * FROM stores WHERE path = ?", (_canonical_path(root),))
    return None if row is None else _record_from_row(row)


def get_store_by_id(db: CatalogDB, store_id: int) -> StoreRecord | None:
    row = db.query_one("SELECT * FROM stores WHERE store_id = ?", (store_id,))
    return None if row is None else _record_from_row(row)


def find_stores(
    db: CatalogDB,
    *,
    graph_fingerprint: str | None = None,
    format_version: int | None = None,
    dataset: str | None = None,
) -> list[StoreRecord]:
    """The fleet queries: filter stores by identity, format or dataset.

    ``graph_fingerprint`` matches either graph identity (the PACE graph's or
    the V-path closure's).  ``format_version`` matches stores holding **any**
    artifact at that version — "which stores still carry v1 heuristics" is
    ``format_version=1`` even on stores whose index already migrated.
    """
    clauses: list[str] = []
    parameters: list[object] = []
    if graph_fingerprint is not None:
        clauses.append("(pace_fingerprint = ? OR updated_fingerprint = ?)")
        parameters.extend((graph_fingerprint, graph_fingerprint))
    if format_version is not None:
        clauses.append(
            "EXISTS (SELECT 1 FROM artifacts a "
            "WHERE a.store_id = stores.store_id AND a.format_version = ?)"
        )
        parameters.append(int(format_version))
    if dataset is not None:
        clauses.append("dataset = ?")
        parameters.append(dataset)
    sql = "SELECT * FROM stores"
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY path"
    return [_record_from_row(row) for row in db.query(sql, parameters)]


def store_staleness(record: StoreRecord) -> str | None:
    """Drift check against the disk: ``None`` (fresh), ``drifted`` or ``missing``."""
    current = ArtifactStore(record.path).manifest_fingerprint()
    if current is None:
        return "missing"
    if current != record.manifest_fingerprint:
        return "drifted"
    return None


def stale_stores(db: CatalogDB) -> list[tuple[StoreRecord, str]]:
    """Registered stores whose on-disk manifest no longer matches the catalog."""
    stale: list[tuple[StoreRecord, str]] = []
    for record in list_stores(db):
        staleness = store_staleness(record)
        if staleness is not None:
            stale.append((record, staleness))
    return stale


def verify_store(db: CatalogDB, record: StoreRecord, *, deep: bool = False) -> StoreVerification:
    """Check one registered store's files against the catalog's records.

    Shallow (default): the manifest fingerprint plus each artifact file's
    existence and size.  ``deep=True`` additionally re-reads every artifact
    and compares its checksum — bit-rot detection at full read cost.  A
    drifted store reports ``drifted`` (its file mismatches are *expected*;
    re-sync first), a fresh store with bad files reports ``corrupt``.
    """
    staleness = store_staleness(record)
    if staleness == "missing":
        return StoreVerification(
            path=record.path,
            status="missing",
            problems=("the store's manifest.json is gone from disk",),
        )
    problems: list[str] = []
    rows = db.query(
        "SELECT name, filename, checksum, size_bytes FROM artifacts "
        "WHERE store_id = ? ORDER BY name",
        (record.store_id,),
    )
    root = FilePath(record.path)
    for row in rows:
        file_path = root / str(row["filename"])
        try:
            data = file_path.read_bytes()
        except OSError as exc:
            problems.append(f"{row['name']}: cannot read {row['filename']} ({exc})")
            continue
        if len(data) != int(row["size_bytes"]):
            problems.append(
                f"{row['name']}: {row['filename']} is {len(data)} bytes, "
                f"catalog recorded {row['size_bytes']}"
            )
        elif deep and checksum_bytes(data) != str(row["checksum"]):
            problems.append(
                f"{row['name']}: {row['filename']} fails its recorded checksum"
            )
    if staleness == "drifted":
        problems.insert(
            0,
            "manifest changed on disk since the last sync; "
            "run 'repro catalog sync' to re-index it",
        )
        return StoreVerification(path=record.path, status="drifted", problems=tuple(problems))
    if problems:
        return StoreVerification(path=record.path, status="corrupt", problems=tuple(problems))
    return StoreVerification(path=record.path, status="ok")


def verify_fleet(db: CatalogDB, *, deep: bool = False) -> list[StoreVerification]:
    """Verify every registered store; ordered by path."""
    return [verify_store(db, record, deep=deep) for record in list_stores(db)]


# --------------------------------------------------------------------------- #
# Garbage collection: catalog rows without stores, stores without rows
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GcAction:
    """One thing ``gc_fleet`` collected (or would collect, on a dry run)."""

    #: ``missing-store`` (a registered path with no manifest on disk) or
    #: ``unregistered-store`` (a store directory no catalog row points at).
    kind: str
    path: str
    #: ``would-unregister`` / ``unregistered`` / ``would-delete`` / ``deleted``.
    action: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "path": self.path, "action": self.action}


def find_unregistered_store_dirs(db: CatalogDB, root: str | FilePath) -> list[str]:
    """Store directories under ``root`` that no catalog row points at.

    A directory is a store when it holds a ``manifest.json``; the walk does
    not descend into stores it finds (anything below belongs to that store).
    Paths come back canonicalised and sorted.
    """
    registered = {record.path for record in list_stores(db)}
    unregistered: list[str] = []
    pending = [FilePath(root)]
    while pending:
        directory = pending.pop()
        if (directory / MANIFEST_NAME).is_file():
            path = _canonical_path(directory)
            if path not in registered:
                unregistered.append(path)
            continue
        try:
            pending.extend(child for child in directory.iterdir() if child.is_dir())
        except OSError:
            continue
    return sorted(unregistered)


def gc_fleet(
    db: CatalogDB, *, root: str | FilePath | None = None, apply: bool = False
) -> list[GcAction]:
    """Collect fleet drift in both directions, dry-run unless ``apply``.

    Registered stores whose directory no longer holds a manifest lose their
    catalog rows (the index must not advertise stores that cannot serve),
    and — when ``root`` is given — store directories on disk that no row
    points at are deleted (a fleet root should not accumulate stray data a
    rebuildable index knows nothing about).  The dry run reports the same
    actions with ``would-`` prefixes and touches nothing.
    """
    actions: list[GcAction] = []
    for record in list_stores(db):
        if ArtifactStore(record.path).manifest_fingerprint() is not None:
            continue
        if apply:
            unregister_store(db, record.path)
        actions.append(
            GcAction(
                kind="missing-store",
                path=record.path,
                action="unregistered" if apply else "would-unregister",
            )
        )
    if root is not None:
        for path in find_unregistered_store_dirs(db, root):
            if apply:
                shutil.rmtree(path)
            actions.append(
                GcAction(
                    kind="unregistered-store",
                    path=path,
                    action="deleted" if apply else "would-delete",
                )
            )
    return actions
