"""SQL schema of the fleet catalog (``catalog.sqlite``).

The catalog is a small relational layer over many
:class:`~repro.persistence.store.ArtifactStore` directories — the blobs stay
content-addressed files on disk; the database only answers fleet questions
("which stores serve graph fingerprint X?", "which still carry format-version-1
heuristics?") and keeps the resumable state of batch operations.  Three tables:

``stores``
    One row per registered store: resolved path (unique), the manifest
    fingerprint recorded at the last sync (drift detection compares it with
    the bytes on disk), the graph content fingerprints, the index artifact's
    format version, the mining recipe summary (dataset/regime/tau, when
    known), a digest of the :class:`~repro.routing.engine.RouterSettings`
    the artifacts were built for, and registration/sync timestamps.

``artifacts``
    One row per manifest entry of each store — kind, name, filename, format
    version, checksum, size — so "which stores hold any v1 document" is one
    indexed ``EXISTS`` query instead of a walk over every manifest on disk.

``operations`` / ``operation_steps``
    Resumable fleet jobs.  An operation is one batch run (``mine``,
    ``prewarm`` or ``migrate``, with its canonical parameter JSON); a step is
    that operation's state on one store (``pending`` → ``running`` → ``done``
    / ``failed``).  Steps are committed individually, so a fleet migration
    killed after store 1 of 2 leaves ``done`` + ``running`` rows behind and a
    resumed run skips the finished store instead of redoing it.

The schema version is pinned in ``PRAGMA user_version``; readers refuse
databases written by a different schema.  Connections are WAL-journaled with
foreign keys enforced — see :mod:`repro.catalog.db` for the pragma and
transaction discipline (enforced by the analyzer's ``sqlite-discipline`` rule).
"""

from __future__ import annotations

__all__ = ["SCHEMA_VERSION", "SCHEMA_STATEMENTS", "OPERATION_KINDS", "STEP_STATUSES"]

#: Value of ``PRAGMA user_version`` this code reads and writes.
SCHEMA_VERSION = 1

#: Batch operation kinds the ``operations`` table admits.
OPERATION_KINDS = ("mine", "prewarm", "migrate")

#: Lifecycle of an operation and of each of its per-store steps.
STEP_STATUSES = ("pending", "running", "done", "failed")

_STORES = """
CREATE TABLE IF NOT EXISTS stores (
    store_id             INTEGER PRIMARY KEY,
    path                 TEXT    NOT NULL UNIQUE,
    manifest_fingerprint TEXT    NOT NULL,
    pace_fingerprint     TEXT    NOT NULL,
    updated_fingerprint  TEXT,
    format_version       INTEGER NOT NULL,
    dataset              TEXT,
    regime               TEXT,
    tau                  INTEGER,
    settings_digest      TEXT    NOT NULL,
    max_budget           REAL,
    heuristic_documents  INTEGER NOT NULL DEFAULT 0,
    total_bytes          INTEGER NOT NULL DEFAULT 0,
    provenance           TEXT    NOT NULL DEFAULT '{}',
    registered_at        TEXT    NOT NULL,
    last_synced_at       TEXT    NOT NULL
)
"""

_ARTIFACTS = """
CREATE TABLE IF NOT EXISTS artifacts (
    artifact_id    INTEGER PRIMARY KEY,
    store_id       INTEGER NOT NULL REFERENCES stores (store_id) ON DELETE CASCADE,
    name           TEXT    NOT NULL,
    kind           TEXT    NOT NULL,
    filename       TEXT    NOT NULL,
    format_version INTEGER NOT NULL,
    checksum       TEXT    NOT NULL,
    size_bytes     INTEGER NOT NULL,
    UNIQUE (store_id, name)
)
"""

_OPERATIONS = """
CREATE TABLE IF NOT EXISTS operations (
    operation_id INTEGER PRIMARY KEY,
    kind         TEXT NOT NULL CHECK (kind IN ('mine', 'prewarm', 'migrate')),
    parameters   TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending'
                 CHECK (status IN ('pending', 'running', 'done', 'failed')),
    created_at   TEXT NOT NULL,
    updated_at   TEXT NOT NULL
)
"""

_OPERATION_STEPS = """
CREATE TABLE IF NOT EXISTS operation_steps (
    operation_id INTEGER NOT NULL REFERENCES operations (operation_id) ON DELETE CASCADE,
    store_id     INTEGER NOT NULL REFERENCES stores (store_id) ON DELETE CASCADE,
    status       TEXT NOT NULL DEFAULT 'pending'
                 CHECK (status IN ('pending', 'running', 'done', 'failed')),
    attempts     INTEGER NOT NULL DEFAULT 0,
    error        TEXT,
    detail       TEXT,
    started_at   TEXT,
    finished_at  TEXT,
    PRIMARY KEY (operation_id, store_id)
)
"""

_INDEXES = (
    "CREATE INDEX IF NOT EXISTS idx_stores_pace ON stores (pace_fingerprint)",
    "CREATE INDEX IF NOT EXISTS idx_stores_updated ON stores (updated_fingerprint)",
    "CREATE INDEX IF NOT EXISTS idx_artifacts_format ON artifacts (format_version)",
    "CREATE INDEX IF NOT EXISTS idx_artifacts_checksum ON artifacts (checksum)",
    "CREATE INDEX IF NOT EXISTS idx_steps_status ON operation_steps (status)",
)

#: Executed in order inside one transaction to create a fresh catalog.
SCHEMA_STATEMENTS: tuple[str, ...] = (
    _STORES,
    _ARTIFACTS,
    _OPERATIONS,
    _OPERATION_STEPS,
    *_INDEXES,
)
