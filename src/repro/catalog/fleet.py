"""Resumable batch operations over a fleet of registered stores.

A fleet job (``repro catalog migrate --all``, a batch prewarm) is one
``operations`` row plus one ``operation_steps`` row per target store.  The
runner commits each step's state transition individually —

``pending`` → ``running`` (attempt counted) → ``done`` | ``failed``

— so the database always records exactly how far the job got.  A run killed
after store 1 of 2 leaves a ``done`` row and a ``running`` row behind;
:func:`find_resumable` hands the same operation back and :func:`run_operation`
skips the ``done`` step and re-executes the interrupted one.  Workers are
idempotent per store (a migration re-run converges on the target format), so
re-executing a ``running`` step is safe — "at least once per store, never
redo a finished store".

A worker that raises :class:`~repro.core.errors.DataError` (corrupt store,
store gone missing) marks its step ``failed`` and the run **continues** with
the remaining stores — one broken store must not wedge a fleet job.
``KeyboardInterrupt``/``SystemExit`` propagate immediately, leaving the
current step ``running`` for the next resume.
"""

from __future__ import annotations

from dataclasses import dataclass
from sqlite3 import Row
from typing import Callable

from repro.catalog.db import CatalogDB, utc_now_iso
from repro.catalog.registry import StoreRecord, get_store_by_id, sync_store
from repro.catalog.schema import OPERATION_KINDS
from repro.core.errors import DataError
from repro.persistence.codecs import strict_json_dumps, strict_json_loads

__all__ = [
    "OperationStep",
    "FleetOperation",
    "StepWorker",
    "create_operation",
    "get_operation",
    "list_operations",
    "find_resumable",
    "run_operation",
    "migrate_worker",
    "prewarm_worker",
    "mine_worker",
]

#: A worker executes one operation step on one store and returns a short
#: human-readable detail string for the step row.
StepWorker = Callable[[CatalogDB, StoreRecord], str]


@dataclass(frozen=True)
class OperationStep:
    """One store's state within a fleet operation."""

    operation_id: int
    store_id: int
    path: str
    status: str
    attempts: int
    error: str | None
    detail: str | None
    started_at: str | None
    finished_at: str | None

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "detail": self.detail,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


@dataclass(frozen=True)
class FleetOperation:
    """One ``operations`` row plus its per-store steps."""

    operation_id: int
    kind: str
    parameters: dict
    status: str
    created_at: str
    updated_at: str
    steps: tuple[OperationStep, ...]

    @property
    def pending_steps(self) -> tuple[OperationStep, ...]:
        """Steps a (re)run still has to execute: everything not ``done``."""
        return tuple(step for step in self.steps if step.status != "done")

    @property
    def done_steps(self) -> tuple[OperationStep, ...]:
        return tuple(step for step in self.steps if step.status == "done")

    @property
    def failed_steps(self) -> tuple[OperationStep, ...]:
        return tuple(step for step in self.steps if step.status == "failed")

    def to_dict(self) -> dict:
        return {
            "operation_id": self.operation_id,
            "kind": self.kind,
            "parameters": self.parameters,
            "status": self.status,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "steps": [step.to_dict() for step in self.steps],
        }


def _canonical_parameters(parameters: dict) -> str:
    """Sorted-key strict JSON: equal parameter dicts encode identically."""
    return strict_json_dumps(parameters, sort_keys=True)


def create_operation(
    db: CatalogDB, kind: str, parameters: dict, stores: list[StoreRecord]
) -> FleetOperation:
    """Record a new fleet operation with one ``pending`` step per store."""
    if kind not in OPERATION_KINDS:
        raise DataError(
            f"unknown fleet operation kind {kind!r}; "
            f"supported: {', '.join(OPERATION_KINDS)}"
        )
    if not stores:
        raise DataError(f"fleet operation {kind!r} has no target stores")
    now = utc_now_iso()
    with db.transaction():
        cursor = db.execute(
            "INSERT INTO operations (kind, parameters, status, created_at, updated_at) "
            "VALUES (?, ?, 'pending', ?, ?)",
            (kind, _canonical_parameters(parameters), now, now),
        )
        operation_id = cursor.lastrowid
        if operation_id is None:  # pragma: no cover - sqlite always assigns one
            raise DataError("catalog insert for fleet operation returned no row id")
        for record in stores:
            db.execute(
                "INSERT INTO operation_steps (operation_id, store_id, status) "
                "VALUES (?, ?, 'pending')",
                (operation_id, record.store_id),
            )
    operation = get_operation(db, int(operation_id))
    if operation is None:  # pragma: no cover - the transaction above just wrote it
        raise DataError("catalog lost the fleet operation it just created")
    return operation


def _steps_for(db: CatalogDB, operation_id: int) -> tuple[OperationStep, ...]:
    rows = db.query(
        "SELECT s.operation_id, s.store_id, st.path, s.status, s.attempts, "
        "       s.error, s.detail, s.started_at, s.finished_at "
        "FROM operation_steps s JOIN stores st ON st.store_id = s.store_id "
        "WHERE s.operation_id = ? ORDER BY st.path",
        (operation_id,),
    )
    return tuple(
        OperationStep(
            operation_id=int(row["operation_id"]),
            store_id=int(row["store_id"]),
            path=str(row["path"]),
            status=str(row["status"]),
            attempts=int(row["attempts"]),
            error=None if row["error"] is None else str(row["error"]),
            detail=None if row["detail"] is None else str(row["detail"]),
            started_at=None if row["started_at"] is None else str(row["started_at"]),
            finished_at=None if row["finished_at"] is None else str(row["finished_at"]),
        )
        for row in rows
    )


def _operation_from_row(db: CatalogDB, row: Row) -> FleetOperation:
    operation_id = int(row["operation_id"])
    parameters = strict_json_loads(
        str(row["parameters"]), what="fleet operation parameters"
    )
    if not isinstance(parameters, dict):
        raise DataError(
            f"fleet operation {operation_id} parameters are not a JSON object"
        )
    return FleetOperation(
        operation_id=operation_id,
        kind=str(row["kind"]),
        parameters=parameters,
        status=str(row["status"]),
        created_at=str(row["created_at"]),
        updated_at=str(row["updated_at"]),
        steps=_steps_for(db, operation_id),
    )


def get_operation(db: CatalogDB, operation_id: int) -> FleetOperation | None:
    row = db.query_one(
        "SELECT * FROM operations WHERE operation_id = ?", (operation_id,)
    )
    return None if row is None else _operation_from_row(db, row)


def list_operations(db: CatalogDB) -> list[FleetOperation]:
    rows = db.query("SELECT * FROM operations ORDER BY operation_id")
    return [_operation_from_row(db, row) for row in rows]


def find_resumable(db: CatalogDB, kind: str, parameters: dict) -> FleetOperation | None:
    """The newest unfinished operation matching ``kind`` + ``parameters``.

    Matching is on the canonical (sorted-key) parameter JSON, so "the same
    job asked for again" resumes instead of restarting.  ``done`` operations
    never match — re-running a completed job is a new operation.
    """
    row = db.query_one(
        "SELECT * FROM operations WHERE kind = ? AND parameters = ? "
        "AND status != 'done' ORDER BY operation_id DESC LIMIT 1",
        (kind, _canonical_parameters(parameters)),
    )
    return None if row is None else _operation_from_row(db, row)


def _set_operation_status(db: CatalogDB, operation_id: int, status: str) -> None:
    with db.transaction():
        db.execute(
            "UPDATE operations SET status = ?, updated_at = ? WHERE operation_id = ?",
            (status, utc_now_iso(), operation_id),
        )


def run_operation(
    db: CatalogDB,
    operation: FleetOperation,
    worker: StepWorker,
    *,
    on_step: Callable[[OperationStep], None] | None = None,
) -> FleetOperation:
    """Execute (or resume) a fleet operation, one store at a time.

    Every state transition commits before the next store starts, which is
    the whole resumability story: kill the process anywhere and the
    ``operation_steps`` table still says which stores are ``done``.  Steps
    already ``done`` are skipped; ``pending``, ``failed`` and interrupted
    ``running`` steps are (re-)executed.  Returns the operation re-read from
    the database, with its final status: ``done`` if every step finished,
    ``failed`` if any step failed.
    """
    _set_operation_status(db, operation.operation_id, "running")
    for step in operation.steps:
        if step.status == "done":
            continue
        with db.transaction():
            db.execute(
                "UPDATE operation_steps SET status = 'running', "
                "attempts = attempts + 1, started_at = ?, error = NULL "
                "WHERE operation_id = ? AND store_id = ?",
                (utc_now_iso(), operation.operation_id, step.store_id),
            )
        record = get_store_by_id(db, step.store_id)
        try:
            if record is None:
                raise DataError(
                    f"store {step.path} was unregistered while operation "
                    f"{operation.operation_id} was in flight"
                )
            detail = worker(db, record)
        except DataError as exc:
            with db.transaction():
                db.execute(
                    "UPDATE operation_steps SET status = 'failed', error = ?, "
                    "finished_at = ? WHERE operation_id = ? AND store_id = ?",
                    (str(exc), utc_now_iso(), operation.operation_id, step.store_id),
                )
        else:
            with db.transaction():
                db.execute(
                    "UPDATE operation_steps SET status = 'done', detail = ?, "
                    "finished_at = ? WHERE operation_id = ? AND store_id = ?",
                    (detail, utc_now_iso(), operation.operation_id, step.store_id),
                )
        if on_step is not None:
            refreshed = get_operation(db, operation.operation_id)
            if refreshed is not None:
                for current in refreshed.steps:
                    if current.store_id == step.store_id:
                        on_step(current)
    finished = get_operation(db, operation.operation_id)
    if finished is None:  # pragma: no cover - nothing deletes operations mid-run
        raise DataError(
            f"fleet operation {operation.operation_id} vanished from the catalog"
        )
    final = "done" if all(s.status == "done" for s in finished.steps) else "failed"
    _set_operation_status(db, finished.operation_id, final)
    refreshed = get_operation(db, finished.operation_id)
    if refreshed is None:  # pragma: no cover - just updated it
        raise DataError(
            f"fleet operation {finished.operation_id} vanished from the catalog"
        )
    return refreshed


# ---------------------------------------------------------------------- #
# Workers
# ---------------------------------------------------------------------- #
def migrate_worker(target_version: int) -> StepWorker:
    """Convert a store to ``target_version`` and re-sync its catalog rows.

    Idempotent: a store already at the target format re-saves into the same
    layout, so re-running an interrupted step converges.
    """

    def worker(db: CatalogDB, record: StoreRecord) -> str:
        from repro.persistence.store import INDEX_ARTIFACT, ArtifactStore
        from repro.routing import RoutingEngine

        store = ArtifactStore.open(record.path)
        before = store.manifest.artifacts[INDEX_ARTIFACT].format_version
        engine = RoutingEngine.from_artifacts(store)
        engine.save_artifacts(store, format_version=target_version)
        sync_store(db, record.path)
        return f"migrated v{before} -> v{target_version}"

    return worker


def prewarm_worker(method: str, destinations: list[int] | None = None) -> StepWorker:
    """Prewarm one method's heuristics into each store, then re-sync it."""

    def worker(db: CatalogDB, record: StoreRecord) -> str:
        from repro.core.errors import ConfigurationError
        from repro.routing import RoutingEngine

        engine = RoutingEngine.from_artifacts(record.path)
        targets = destinations
        if targets is None:
            targets = sorted(engine.pace_graph.network.vertex_ids())
        try:
            built = engine.prewarm(method, targets)
        except ConfigurationError as exc:
            # A heuristic-free method is an operator mistake, but within a
            # fleet run it must fail the step, not crash the whole job.
            raise DataError(str(exc)) from exc
        engine.save_artifacts(record.path)
        sync_store(db, record.path)
        return f"prewarmed {built} heuristics for {method}"

    return worker


def mine_worker() -> StepWorker:
    """Re-mine each store from its recorded recipe and republish in place.

    Only works for stores whose manifest recorded a complete dataset recipe
    (``repro build-artifacts`` always records one); stores without a recipe
    fail their step.
    """

    def worker(db: CatalogDB, record: StoreRecord) -> str:
        from repro.persistence.store import ArtifactStore
        from repro.routing import DatasetRecipe, RouterSettings, RoutingEngine

        if record.dataset is None or record.regime is None or record.tau is None:
            raise DataError(
                f"store {record.path} has no recorded dataset recipe; "
                "re-mine it manually with 'repro build-artifacts'"
            )
        store = ArtifactStore.open(record.path)
        try:
            settings = RouterSettings(**store.manifest.settings)
        except TypeError as exc:
            raise DataError(
                f"store {record.path} manifest settings do not match "
                f"RouterSettings: {exc}"
            ) from exc
        recipe = DatasetRecipe(
            dataset=record.dataset, regime=record.regime, tau=record.tau
        )
        engine = recipe.build_engine(settings=settings)
        engine.save_artifacts(
            record.path, provenance={"builder": "repro catalog mine --all"}
        )
        sync_store(db, record.path)
        return f"re-mined {record.dataset}/{record.regime} tau={record.tau}"

    return worker
