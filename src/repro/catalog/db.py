"""Connection, pragma and transaction discipline for the fleet catalog.

All SQLite access in the project goes through :class:`CatalogDB` — the
analyzer's ``sqlite-discipline`` rule enforces it.  The discipline exists
because SQLite's defaults are wrong for a catalog shared by long-lived
serving processes and batch fleet jobs:

* **WAL journal mode** — readers (``repro catalog query`` from a serving
  box, ``/stats`` handlers) never block behind a writer (a fleet sync or a
  migration updating step state), and a crashed writer never leaves the
  database locked.
* **``foreign_keys=ON``** — off by default in SQLite; without it deleting a
  store would strand its ``artifacts`` and ``operation_steps`` rows.
* **Explicit transactions** — connections run in autocommit
  (``isolation_level=None``) and every write happens inside
  :meth:`CatalogDB.transaction`, which issues ``BEGIN IMMEDIATE`` so write
  intent is declared up front (no deadlock-prone deferred upgrade) and a
  batch of statements commits or rolls back as one unit.  :meth:`execute`
  refuses writes outside a transaction, so partial multi-statement updates
  cannot be committed by accident.

Every ``sqlite3`` error is translated to
:class:`~repro.core.errors.DataError`, keeping the catalog inside the same
error taxonomy as the persistence readers: a corrupt, locked or
foreign-schema database surfaces as an operational error (CLI exit 2), never
a traceback.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from datetime import datetime, timezone
from pathlib import Path as FilePath
from types import TracebackType

from repro.catalog.schema import SCHEMA_STATEMENTS, SCHEMA_VERSION
from repro.core.errors import DataError

__all__ = ["CatalogDB", "utc_now_iso"]


def utc_now_iso() -> str:
    """Timestamps the catalog records (UTC, second precision, ISO-8601)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _apply_pragmas(connection: sqlite3.Connection, *, busy_timeout_ms: int) -> None:
    """The non-negotiable per-connection setup (see the module docstring)."""
    connection.row_factory = sqlite3.Row
    connection.execute("PRAGMA journal_mode=WAL")
    connection.execute("PRAGMA foreign_keys=ON")
    # WAL + NORMAL is durable against application crashes (the usual failure
    # mode here) and several times faster than FULL for sync-heavy writes.
    connection.execute("PRAGMA synchronous=NORMAL")
    connection.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")


class CatalogDB:
    """One connection to a ``catalog.sqlite``, with the catalog's discipline.

    Connections are **not** shared across threads (SQLite's own rule); every
    thread — like every process — opens its own ``CatalogDB`` on the same
    path, and WAL keeps concurrent readers unblocked while one of them
    writes.  Reads go through :meth:`query` / :meth:`query_one` any time;
    writes must go through :meth:`execute` inside a :meth:`transaction`
    block.
    """

    def __init__(
        self,
        path: str | FilePath,
        *,
        create: bool = True,
        timeout_seconds: float = 5.0,
    ) -> None:
        self.path = FilePath(path)
        self._timeout_seconds = float(timeout_seconds)
        self._in_transaction = False
        if not create and not self.path.exists():
            raise DataError(
                f"no catalog database at {self.path} "
                "(create one with 'repro catalog register --db ... <store>')"
            )
        self._connection = self._connect()
        self._ensure_schema()

    def _connect(self) -> sqlite3.Connection:
        try:
            connection = sqlite3.connect(
                str(self.path),
                timeout=self._timeout_seconds,
                isolation_level=None,  # autocommit; transaction() issues BEGIN itself
            )
            _apply_pragmas(
                connection, busy_timeout_ms=int(self._timeout_seconds * 1000)
            )
        except sqlite3.Error as exc:
            raise DataError(f"cannot open catalog database {self.path}: {exc}") from exc
        return connection

    def _ensure_schema(self) -> None:
        row = self._execute_raw("PRAGMA user_version").fetchone()
        version = 0 if row is None else int(row[0])
        if version == 0:
            with self.transaction():
                for statement in SCHEMA_STATEMENTS:
                    self._execute_raw(statement)
                self._execute_raw(f"PRAGMA user_version = {int(SCHEMA_VERSION)}")
            return
        if version != SCHEMA_VERSION:
            raise DataError(
                f"catalog database {self.path} uses schema version {version}; this "
                f"build supports {SCHEMA_VERSION} — rebuild the catalog (it is an "
                "index over the stores, which remain the source of truth)"
            )

    # ------------------------------------------------------------------ #
    # Statement execution
    # ------------------------------------------------------------------ #
    def _execute_raw(self, sql: str, parameters: Sequence[object] = ()) -> sqlite3.Cursor:
        """Run one statement, translating sqlite errors into the taxonomy."""
        try:
            return self._connection.execute(sql, tuple(parameters))
        except sqlite3.Error as exc:
            raise DataError(f"catalog database {self.path}: {exc}") from exc

    def execute(self, sql: str, parameters: Sequence[object] = ()) -> sqlite3.Cursor:
        """Run one **write** statement; only valid inside :meth:`transaction`."""
        if not self._in_transaction:
            raise DataError(
                "catalog writes must run inside CatalogDB.transaction(); "
                "wrap the statement in 'with db.transaction():'"
            )
        return self._execute_raw(sql, parameters)

    def query(self, sql: str, parameters: Sequence[object] = ()) -> list[sqlite3.Row]:
        """Run one read statement and fetch all rows."""
        return self._execute_raw(sql, parameters).fetchall()

    def query_one(self, sql: str, parameters: Sequence[object] = ()) -> sqlite3.Row | None:
        """Run one read statement and fetch the first row (or ``None``)."""
        row = self._execute_raw(sql, parameters).fetchone()
        return row  # sqlite3.Row | None; fetchone's Any needs the named binding

    @contextmanager
    def transaction(self) -> Iterator["CatalogDB"]:
        """``BEGIN IMMEDIATE`` … ``COMMIT``/``ROLLBACK`` around a write batch.

        Reentrant: a nested ``with db.transaction():`` joins the outer
        transaction instead of nesting (SQLite has no true nested
        transactions), so helpers that write — :func:`~repro.catalog.registry.sync_store`
        inside a fleet step, say — compose with callers that already hold one.
        """
        if self._in_transaction:
            yield self
            return
        self._execute_raw("BEGIN IMMEDIATE")
        self._in_transaction = True
        try:
            yield self
        except BaseException:
            self._in_transaction = False
            self._execute_raw("ROLLBACK")
            raise
        else:
            self._in_transaction = False
            self._execute_raw("COMMIT")

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection; an open transaction is rolled back."""
        if self._in_transaction:
            self._in_transaction = False
            try:
                self._execute_raw("ROLLBACK")
            except DataError:
                pass  # closing a broken connection must not mask the original error
        self._connection.close()

    def __enter__(self) -> "CatalogDB":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"CatalogDB(path={str(self.path)!r})"
