"""Simulation of raw GPS traces from trajectories.

The paper's raw input is GPS data sampled at 1 Hz (Aalborg) and 0.2 Hz
(Xi'an), which is map matched onto the road network before distributions are
estimated.  To exercise that part of the pipeline we go the other way:
given a (ground-truth) trajectory we emit noisy GPS observations along its
geometry at a configurable sampling interval, which the HMM map matcher in
:mod:`repro.trajectories.map_matching` then has to match back onto the
network.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.network.road_network import RoadNetwork
from repro.trajectories.model import GpsPoint, GpsTrace, Trajectory

__all__ = ["GpsSimulatorConfig", "simulate_gps_trace", "simulate_gps_traces"]


@dataclass(frozen=True)
class GpsSimulatorConfig:
    """Parameters of the GPS observation simulator."""

    sampling_interval: float = 5.0
    noise_sigma: float = 12.0
    seed: int = 29

    def validate(self) -> None:
        if self.sampling_interval <= 0:
            raise ConfigurationError("sampling_interval must be positive")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be non-negative")


def _positions_along(
    network: RoadNetwork, trajectory: Trajectory
) -> list[tuple[float, float, float]]:
    """(x, y, timestamp) triples describing the vehicle's true position over time."""
    positions: list[tuple[float, float, float]] = []
    clock = trajectory.departure_time
    for edge_id, cost in zip(trajectory.path.edges, trajectory.edge_costs):
        edge = network.edge(edge_id)
        start = network.vertex(edge.source)
        end = network.vertex(edge.target)
        positions.append((start.x, start.y, clock))
        clock += cost
        positions.append((end.x, end.y, clock))
    return positions


def simulate_gps_trace(
    network: RoadNetwork,
    trajectory: Trajectory,
    config: GpsSimulatorConfig | None = None,
    *,
    rng: random.Random | None = None,
) -> GpsTrace:
    """Emit a noisy GPS trace following the trajectory's path and timing."""
    config = config or GpsSimulatorConfig()
    config.validate()
    rng = rng or random.Random(config.seed + trajectory.trajectory_id)
    true_positions = _positions_along(network, trajectory)
    start_time = true_positions[0][2]
    end_time = true_positions[-1][2]

    points: list[GpsPoint] = []
    sample_time = start_time
    index = 0
    while sample_time <= end_time + 1e-9:
        while index + 1 < len(true_positions) and true_positions[index + 1][2] < sample_time:
            index += 1
        x0, y0, t0 = true_positions[index]
        x1, y1, t1 = true_positions[min(index + 1, len(true_positions) - 1)]
        if t1 <= t0:
            x, y = x1, y1
        else:
            fraction = (sample_time - t0) / (t1 - t0)
            fraction = min(max(fraction, 0.0), 1.0)
            x = x0 + fraction * (x1 - x0)
            y = y0 + fraction * (y1 - y0)
        points.append(
            GpsPoint(
                x=x + rng.gauss(0.0, config.noise_sigma),
                y=y + rng.gauss(0.0, config.noise_sigma),
                timestamp=sample_time,
            )
        )
        sample_time += config.sampling_interval

    if len(points) < 2:
        # Very short trips still need two observations for a valid trace.
        points.append(
            GpsPoint(
                x=true_positions[-1][0] + rng.gauss(0.0, config.noise_sigma),
                y=true_positions[-1][1] + rng.gauss(0.0, config.noise_sigma),
                timestamp=end_time,
            )
        )
    return GpsTrace(trace_id=trajectory.trajectory_id, points=tuple(points))


def simulate_gps_traces(
    network: RoadNetwork,
    trajectories: list[Trajectory],
    config: GpsSimulatorConfig | None = None,
) -> list[GpsTrace]:
    """Simulate GPS traces for a whole batch of trajectories."""
    config = config or GpsSimulatorConfig()
    config.validate()
    rng = random.Random(config.seed)
    return [simulate_gps_trace(network, t, config, rng=rng) for t in trajectories]
