"""Outlier detection and filtering for trajectories.

The paper filters abnormal trajectory data before estimating distributions
(referencing dedicated time-series outlier-detection work).  Here we provide
two complementary, deterministic filters that cover the failure modes a
synthetic or real fleet exhibits:

* a *physical plausibility* filter on per-edge speeds (a car cannot
  meaningfully exceed the speed limit by a large factor, nor crawl below a
  minimum speed for the whole edge), and
* a *statistical* filter that removes trajectories whose total travel time is
  an extreme outlier for their origin–destination relation (robust z-score
  based on the median absolute deviation).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.network.road_network import RoadNetwork
from repro.trajectories.model import Trajectory

__all__ = ["OutlierFilterConfig", "filter_implausible_speeds", "filter_statistical_outliers", "clean_trajectories"]


@dataclass(frozen=True)
class OutlierFilterConfig:
    """Parameters for trajectory cleaning."""

    max_speed_factor: float = 1.6
    min_speed_kmh: float = 2.0
    robust_z_threshold: float = 4.0
    min_group_size: int = 5

    def validate(self) -> None:
        if self.max_speed_factor <= 0:
            raise ConfigurationError("max_speed_factor must be positive")
        if self.min_speed_kmh < 0:
            raise ConfigurationError("min_speed_kmh must be non-negative")
        if self.robust_z_threshold <= 0:
            raise ConfigurationError("robust_z_threshold must be positive")
        if self.min_group_size < 2:
            raise ConfigurationError("min_group_size must be at least 2")


def filter_implausible_speeds(
    network: RoadNetwork,
    trajectories: list[Trajectory],
    config: OutlierFilterConfig | None = None,
) -> list[Trajectory]:
    """Drop trajectories containing physically implausible per-edge speeds."""
    config = config or OutlierFilterConfig()
    config.validate()
    kept: list[Trajectory] = []
    for trajectory in trajectories:
        plausible = True
        for edge_id, cost in zip(trajectory.path.edges, trajectory.edge_costs):
            edge = network.edge(edge_id)
            speed_kmh = (edge.length / cost) * 3.6
            if speed_kmh > edge.speed_limit * config.max_speed_factor:
                plausible = False
                break
            if speed_kmh < config.min_speed_kmh:
                plausible = False
                break
        if plausible:
            kept.append(trajectory)
    return kept


def filter_statistical_outliers(
    trajectories: list[Trajectory],
    config: OutlierFilterConfig | None = None,
) -> list[Trajectory]:
    """Drop trajectories whose total time is an extreme outlier for their OD relation."""
    config = config or OutlierFilterConfig()
    config.validate()
    groups: dict[tuple[int, int], list[Trajectory]] = {}
    for trajectory in trajectories:
        key = (trajectory.path.source, trajectory.path.target)
        groups.setdefault(key, []).append(trajectory)

    kept: list[Trajectory] = []
    for group in groups.values():
        if len(group) < config.min_group_size:
            kept.extend(group)
            continue
        totals = [t.total_cost for t in group]
        median = statistics.median(totals)
        deviations = [abs(total - median) for total in totals]
        mad = statistics.median(deviations)
        if mad <= 0:
            kept.extend(group)
            continue
        for trajectory, total in zip(group, totals):
            robust_z = 0.6745 * (total - median) / mad
            if abs(robust_z) <= config.robust_z_threshold:
                kept.append(trajectory)
    kept.sort(key=lambda t: t.trajectory_id)
    return kept


def clean_trajectories(
    network: RoadNetwork,
    trajectories: list[Trajectory],
    config: OutlierFilterConfig | None = None,
) -> list[Trajectory]:
    """Apply both filters: physical plausibility first, then statistical outliers."""
    config = config or OutlierFilterConfig()
    plausible = filter_implausible_speeds(network, trajectories, config)
    return filter_statistical_outliers(plausible, config)
