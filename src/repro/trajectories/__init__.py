"""Trajectory data: models, synthetic generation, GPS simulation, map matching and cleaning."""

from repro.trajectories.generator import (
    TrajectoryGenerator,
    TrajectoryGeneratorConfig,
    generate_trajectories,
)
from repro.trajectories.gps import GpsSimulatorConfig, simulate_gps_trace, simulate_gps_traces
from repro.trajectories.map_matching import HmmMapMatcher, MapMatcherConfig, MatchResult
from repro.trajectories.model import OFF_PEAK, PEAK, GpsPoint, GpsTrace, TimeRegime, Trajectory
from repro.trajectories.outliers import (
    OutlierFilterConfig,
    clean_trajectories,
    filter_implausible_speeds,
    filter_statistical_outliers,
)
from repro.trajectories.splits import Fold, k_fold_split, split_by_regime

__all__ = [
    "Trajectory",
    "GpsPoint",
    "GpsTrace",
    "TimeRegime",
    "PEAK",
    "OFF_PEAK",
    "TrajectoryGenerator",
    "TrajectoryGeneratorConfig",
    "generate_trajectories",
    "GpsSimulatorConfig",
    "simulate_gps_trace",
    "simulate_gps_traces",
    "HmmMapMatcher",
    "MapMatcherConfig",
    "MatchResult",
    "OutlierFilterConfig",
    "clean_trajectories",
    "filter_implausible_speeds",
    "filter_statistical_outliers",
    "Fold",
    "k_fold_split",
    "split_by_regime",
]
