"""Trajectory data model.

A trajectory is one observed trip through the road network: the path it
followed (after map matching) plus the travel time spent on every edge, and
the departure time of the trip.  Trajectories are the raw material from which
the PACE model's edge weights and T-path joint distributions are estimated.

GPS traces — the raw, noisy observations — are modelled separately and are
converted into trajectories by the map matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import DataError
from repro.core.paths import Path

__all__ = ["GpsPoint", "GpsTrace", "Trajectory", "TimeRegime", "PEAK", "OFF_PEAK"]


@dataclass(frozen=True)
class TimeRegime:
    """A time-of-day regime (the paper builds separate models for peak and off-peak)."""

    name: str
    intervals: tuple[tuple[float, float], ...]

    def contains(self, seconds_since_midnight: float) -> bool:
        """True when a departure time falls inside this regime."""
        return any(start <= seconds_since_midnight < end for start, end in self.intervals)


#: Peak hours as defined in the paper: 7:00–8:30 and 16:00–17:30.
PEAK = TimeRegime("peak", ((7 * 3600.0, 8.5 * 3600.0), (16 * 3600.0, 17.5 * 3600.0)))
#: Everything outside the peak intervals.
OFF_PEAK = TimeRegime(
    "off-peak",
    ((0.0, 7 * 3600.0), (8.5 * 3600.0, 16 * 3600.0), (17.5 * 3600.0, 24 * 3600.0)),
)


@dataclass(frozen=True)
class GpsPoint:
    """A single raw GPS observation (metres, seconds since midnight)."""

    x: float
    y: float
    timestamp: float


@dataclass(frozen=True)
class GpsTrace:
    """A raw GPS trace for one trip, before map matching."""

    trace_id: int
    points: tuple[GpsPoint, ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise DataError(f"GPS trace {self.trace_id} needs at least two points")
        times = [p.timestamp for p in self.points]
        if any(b < a for a, b in zip(times, times[1:])):
            raise DataError(f"GPS trace {self.trace_id} has non-monotone timestamps")

    @property
    def departure_time(self) -> float:
        return self.points[0].timestamp

    @property
    def duration(self) -> float:
        return self.points[-1].timestamp - self.points[0].timestamp


@dataclass(frozen=True)
class Trajectory:
    """A map-matched trip: the path travelled and the cost spent on each edge."""

    trajectory_id: int
    path: Path
    edge_costs: tuple[float, ...]
    departure_time: float = 8 * 3600.0
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if len(self.edge_costs) != self.path.cardinality:
            raise DataError(
                f"trajectory {self.trajectory_id}: {len(self.edge_costs)} edge costs for a "
                f"path with {self.path.cardinality} edges"
            )
        if any(cost <= 0 for cost in self.edge_costs):
            raise DataError(f"trajectory {self.trajectory_id} has non-positive edge costs")

    @property
    def total_cost(self) -> float:
        """The total travel time of the trip."""
        return sum(self.edge_costs)

    @property
    def num_edges(self) -> int:
        return self.path.cardinality

    def cost_of_slice(self, start: int, stop: int) -> tuple[float, ...]:
        """The per-edge costs of the sub-path covering edges ``[start, stop)``."""
        if not 0 <= start < stop <= self.num_edges:
            raise DataError(f"invalid slice [{start}, {stop}) for {self.num_edges} edges")
        return self.edge_costs[start:stop]

    def in_regime(self, regime: TimeRegime) -> bool:
        """True when the trip departs inside the given time regime."""
        return regime.contains(self.departure_time)
