"""Hidden-Markov-model map matching of GPS traces onto the road network.

The paper map matches its raw GPS data with the classic HMM approach of
Newson and Krumm before estimating distributions.  This module implements a
compact version of that algorithm:

* candidate states for each observation are the road segments within a
  search radius of the GPS point,
* emission probabilities decay with the squared distance between the point
  and its projection onto the segment,
* transition probabilities decay with the difference between the network
  (driving) distance and the straight-line distance between consecutive
  projections — drivers rarely detour wildly between two samples, and
* the most likely edge sequence is recovered with the Viterbi algorithm and
  stitched into a connected path (gaps are filled with shortest paths).

The matcher is exercised end-to-end against the GPS simulator in the test
suite: simulated noisy traces must match back onto the ground-truth routes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.errors import DataError, NoPathError
from repro.core.paths import Path
from repro.network.road_network import RoadNetwork, RoadSegment
from repro.network.algorithms import shortest_path, single_source_costs
from repro.trajectories.model import GpsTrace, Trajectory

__all__ = ["MapMatcherConfig", "HmmMapMatcher", "MatchResult"]


@dataclass(frozen=True)
class MapMatcherConfig:
    """Parameters of the HMM map matcher."""

    candidate_radius: float = 80.0
    emission_sigma: float = 20.0
    transition_beta: float = 60.0
    max_candidates: int = 6

    def validate(self) -> None:
        if self.candidate_radius <= 0:
            raise DataError("candidate_radius must be positive")
        if self.emission_sigma <= 0:
            raise DataError("emission_sigma must be positive")
        if self.transition_beta <= 0:
            raise DataError("transition_beta must be positive")
        if self.max_candidates < 1:
            raise DataError("max_candidates must be at least 1")


@dataclass(frozen=True)
class MatchResult:
    """The outcome of map matching one GPS trace."""

    trace_id: int
    path: Path
    matched_fraction: float

    def to_trajectory(self, network: RoadNetwork, trace: GpsTrace) -> Trajectory:
        """Convert to a trajectory by distributing the observed duration over the edges.

        The trace only constrains the total duration, so per-edge costs are
        allocated proportionally to free-flow travel times — the convention
        used when sampling rates are too low to time individual edges.
        """
        duration = max(trace.duration, 1.0)
        free_flow = [network.edge(e).free_flow_time() for e in self.path.edges]
        total_free_flow = sum(free_flow)
        costs = tuple(max(1.0, duration * f / total_free_flow) for f in free_flow)
        return Trajectory(
            trajectory_id=trace.trace_id,
            path=self.path,
            edge_costs=costs,
            departure_time=trace.departure_time,
        )


def _project_point_to_segment(
    px: float, py: float, ax: float, ay: float, bx: float, by: float
) -> tuple[float, float, float]:
    """Project a point onto a segment; returns (distance, fraction along segment, _)."""
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq <= 0:
        return math.hypot(px - ax, py - ay), 0.0, 0.0
    t = ((px - ax) * dx + (py - ay) * dy) / length_sq
    t = min(max(t, 0.0), 1.0)
    qx, qy = ax + t * dx, ay + t * dy
    return math.hypot(px - qx, py - qy), t, 0.0


class HmmMapMatcher:
    """Viterbi map matching of GPS traces onto a road network."""

    def __init__(self, network: RoadNetwork, config: MapMatcherConfig | None = None):
        self._network = network
        self._config = config or MapMatcherConfig()
        self._config.validate()

    # ------------------------------------------------------------------ #
    # Candidate generation and probabilities
    # ------------------------------------------------------------------ #
    def _candidates(self, x: float, y: float) -> list[tuple[RoadSegment, float, float]]:
        """Edges near a point: (edge, distance to point, fraction along edge)."""
        config = self._config
        candidates: list[tuple[RoadSegment, float, float]] = []
        for edge in self._network.edges():
            a = self._network.vertex(edge.source)
            b = self._network.vertex(edge.target)
            distance, fraction, _ = _project_point_to_segment(x, y, a.x, a.y, b.x, b.y)
            if distance <= config.candidate_radius:
                candidates.append((edge, distance, fraction))
        candidates.sort(key=lambda item: item[1])
        return candidates[: config.max_candidates]

    def _emission_log_prob(self, distance: float) -> float:
        sigma = self._config.emission_sigma
        return -0.5 * (distance / sigma) ** 2

    def _transition_log_prob(
        self,
        previous: tuple[RoadSegment, float, float],
        current: tuple[RoadSegment, float, float],
        straight_line: float,
        network_costs: dict[int, float],
    ) -> float:
        prev_edge, _, prev_fraction = previous
        cur_edge, _, cur_fraction = current
        if prev_edge.edge_id == cur_edge.edge_id:
            network_distance = abs(cur_fraction - prev_fraction) * prev_edge.length
        else:
            remaining_on_prev = (1.0 - prev_fraction) * prev_edge.length
            to_current_source = network_costs.get(cur_edge.source, float("inf"))
            if math.isinf(to_current_source):
                return -math.inf
            network_distance = remaining_on_prev + to_current_source + cur_fraction * cur_edge.length
        return -abs(network_distance - straight_line) / self._config.transition_beta

    # ------------------------------------------------------------------ #
    # Matching
    # ------------------------------------------------------------------ #
    def match(self, trace: GpsTrace) -> MatchResult:
        """Match a GPS trace onto the network and return the most likely path."""
        observations = list(trace.points)
        candidate_lists = [self._candidates(p.x, p.y) for p in observations]
        usable = [(point, cands) for point, cands in zip(observations, candidate_lists) if cands]
        if len(usable) < 2:
            raise DataError(f"trace {trace.trace_id} has too few matchable observations")
        observations = [point for point, _ in usable]
        candidate_lists = [cands for _, cands in usable]

        # Viterbi over the candidate lattice.
        scores = [self._emission_log_prob(d) for _, d, _ in candidate_lists[0]]
        back_pointers: list[list[int]] = []
        for step in range(1, len(observations)):
            prev_point, cur_point = observations[step - 1], observations[step]
            straight_line = math.hypot(cur_point.x - prev_point.x, cur_point.y - prev_point.y)
            prev_candidates = candidate_lists[step - 1]
            cur_candidates = candidate_lists[step]
            # Pre-compute network distances from the head of every previous candidate.
            cost_maps = [
                single_source_costs(
                    self._network,
                    edge.target,
                    lambda e: e.length,
                    targets={c[0].source for c in cur_candidates},
                )
                for edge, _, _ in prev_candidates
            ]
            new_scores: list[float] = []
            pointers: list[int] = []
            for cur in cur_candidates:
                best_score, best_prev = -math.inf, 0
                for prev_index, prev in enumerate(prev_candidates):
                    transition = self._transition_log_prob(
                        prev, cur, straight_line, cost_maps[prev_index]
                    )
                    candidate_score = scores[prev_index] + transition
                    if candidate_score > best_score:
                        best_score, best_prev = candidate_score, prev_index
                new_scores.append(best_score + self._emission_log_prob(cur[1]))
                pointers.append(best_prev)
            scores = new_scores
            back_pointers.append(pointers)

        # Back-track the most likely candidate sequence.
        best_last = max(range(len(scores)), key=lambda i: scores[i])
        indices = [best_last]
        for pointers in reversed(back_pointers):
            indices.append(pointers[indices[-1]])
        indices.reverse()
        matched_edges = [candidate_lists[i][index][0] for i, index in enumerate(indices)]

        path = self._stitch(matched_edges)
        matchable = sum(1 for cands in candidate_lists if cands)
        return MatchResult(
            trace_id=trace.trace_id,
            path=path,
            matched_fraction=matchable / len(trace.points),
        )

    def _stitch(self, matched_edges: list[RoadSegment]) -> Path:
        """Turn the per-observation edge assignment into one connected edge sequence."""
        sequence: list[int] = []
        for edge in matched_edges:
            if sequence and sequence[-1] == edge.edge_id:
                continue
            if sequence:
                previous = self._network.edge(sequence[-1])
                if previous.target != edge.source:
                    try:
                        filler, _ = shortest_path(
                            self._network, previous.target, edge.source, lambda e: e.length
                        )
                        sequence.extend(filler.edges)
                    except NoPathError as exc:
                        raise DataError(
                            f"cannot stitch matched edges {previous.edge_id} -> {edge.edge_id}"
                        ) from exc
            sequence.append(edge.edge_id)
        deduplicated: list[int] = []
        for edge_id in sequence:
            if not deduplicated or deduplicated[-1] != edge_id:
                deduplicated.append(edge_id)
        return self._network.path_from_edge_ids(deduplicated)
