"""Cross-validation splits of trajectory sets.

The paper's accuracy experiment (Fig. 10b) uses five-fold cross validation:
the trajectory set is partitioned into five disjoint groups; each group is
used once as the test set while the remaining four form the training set used
to instantiate T-paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import ConfigurationError
from repro.trajectories.model import TimeRegime, Trajectory

__all__ = ["Fold", "k_fold_split", "split_by_regime"]


@dataclass(frozen=True)
class Fold:
    """One train/test split."""

    index: int
    train: tuple[Trajectory, ...]
    test: tuple[Trajectory, ...]


def k_fold_split(
    trajectories: list[Trajectory], *, folds: int = 5, seed: int = 11
) -> list[Fold]:
    """Partition trajectories into ``folds`` disjoint groups and produce all splits."""
    if folds < 2:
        raise ConfigurationError("need at least two folds")
    if len(trajectories) < folds:
        raise ConfigurationError(
            f"cannot split {len(trajectories)} trajectories into {folds} folds"
        )
    shuffled = list(trajectories)
    random.Random(seed).shuffle(shuffled)
    groups: list[list[Trajectory]] = [[] for _ in range(folds)]
    for position, trajectory in enumerate(shuffled):
        groups[position % folds].append(trajectory)

    splits: list[Fold] = []
    for index in range(folds):
        test = tuple(groups[index])
        train = tuple(t for j, group in enumerate(groups) if j != index for t in group)
        splits.append(Fold(index=index, train=train, test=test))
    return splits


def split_by_regime(
    trajectories: list[Trajectory], regimes: list[TimeRegime]
) -> dict[str, list[Trajectory]]:
    """Group trajectories by the time regime their departure falls into."""
    grouped: dict[str, list[Trajectory]] = {regime.name: [] for regime in regimes}
    for trajectory in trajectories:
        for regime in regimes:
            if regime.contains(trajectory.departure_time):
                grouped[regime.name].append(trajectory)
                break
    return grouped
