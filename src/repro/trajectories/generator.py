"""Synthetic generation of correlated vehicle trajectories.

The paper estimates its uncertain road networks from large proprietary GPS
fleets (Aalborg and Xi'an).  Those fleets are unavailable, so this module
simulates the property of real traffic that motivates the PACE model: travel
times on consecutive edges of a trip are *dependent* — a driver (or a traffic
situation) that is slow on one edge tends to be slow on the next.

The simulator combines three sources of variation:

* a *regime* factor per departure period (peak hours are slower than
  off-peak, and arterials are hit harder than residential streets),
* a per-trip *driver factor* shared by every edge of the trip, and
* a per-trip Markov *traffic state* (smooth / congested) that persists along
  consecutive edges of the route.

The driver factor and the traffic state both create exactly the positive
dependency between consecutive edge costs that the EDGE model's independence
assumption destroys and that T-path joints preserve — so the accuracy
experiment of the paper (Fig. 10b) is meaningful on this data.

Trips are concentrated on a configurable number of hub-to-hub relations so
that popular paths accumulate enough trajectories to become T-paths, mirroring
how real fleets concentrate on main roads.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.errors import ConfigurationError, NoPathError
from repro.core.paths import Path
from repro.network.road_network import RoadNetwork, RoadSegment
from repro.network.algorithms import shortest_path
from repro.trajectories.model import PEAK, Trajectory

__all__ = ["TrajectoryGeneratorConfig", "TrajectoryGenerator", "generate_trajectories"]


@dataclass(frozen=True)
class TrajectoryGeneratorConfig:
    """Parameters controlling the synthetic trajectory simulator."""

    num_trajectories: int = 2000
    num_hubs: int = 10
    hub_trip_fraction: float = 0.8
    alternative_route_fraction: float = 0.25
    peak_fraction: float = 0.5
    peak_congestion: float = 1.55
    off_peak_congestion: float = 1.1
    arterial_extra_congestion: float = 0.25
    driver_sigma: float = 0.18
    edge_noise_sigma: float = 0.06
    congested_state_multiplier: float = 1.4
    congested_state_probability: float = 0.3
    state_persistence: float = 0.85
    min_route_edges: int = 2
    resolution: float = 1.0
    seed: int = 13

    def validate(self) -> None:
        if self.num_trajectories < 1:
            raise ConfigurationError("num_trajectories must be positive")
        if self.num_hubs < 2:
            raise ConfigurationError("num_hubs must be at least 2")
        if not 0.0 <= self.hub_trip_fraction <= 1.0:
            raise ConfigurationError("hub_trip_fraction must lie in [0, 1]")
        if not 0.0 <= self.peak_fraction <= 1.0:
            raise ConfigurationError("peak_fraction must lie in [0, 1]")
        if not 0.0 <= self.alternative_route_fraction <= 1.0:
            raise ConfigurationError("alternative_route_fraction must lie in [0, 1]")
        if not 0.0 <= self.congested_state_probability <= 1.0:
            raise ConfigurationError("congested_state_probability must lie in [0, 1]")
        if not 0.0 <= self.state_persistence <= 1.0:
            raise ConfigurationError("state_persistence must lie in [0, 1]")
        if self.resolution <= 0:
            raise ConfigurationError("resolution must be positive")
        if self.min_route_edges < 1:
            raise ConfigurationError("min_route_edges must be at least 1")


class TrajectoryGenerator:
    """Simulates a fleet of trips with correlated edge travel times."""

    def __init__(self, network: RoadNetwork, config: TrajectoryGeneratorConfig | None = None):
        self._network = network
        self._config = config or TrajectoryGeneratorConfig()
        self._config.validate()
        self._rng = random.Random(self._config.seed)
        self._route_cache: dict[tuple[int, int], list[Path]] = {}
        self._hubs = self._select_hubs()

    @property
    def config(self) -> TrajectoryGeneratorConfig:
        return self._config

    @property
    def hubs(self) -> list[int]:
        """The hub vertices between which most synthetic trips run."""
        return list(self._hubs)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def generate(self) -> list[Trajectory]:
        """Generate the configured number of trajectories."""
        trajectories: list[Trajectory] = []
        attempts = 0
        max_attempts = self._config.num_trajectories * 20
        while len(trajectories) < self._config.num_trajectories and attempts < max_attempts:
            attempts += 1
            route = self._pick_route()
            if route is None:
                continue
            departure = self._sample_departure_time()
            costs = self._simulate_edge_costs(route, departure)
            trajectories.append(
                Trajectory(
                    trajectory_id=len(trajectories),
                    path=route,
                    edge_costs=costs,
                    departure_time=departure,
                )
            )
        if len(trajectories) < self._config.num_trajectories:
            raise NoPathError(
                "could not generate enough trajectories; the network is too disconnected "
                f"(generated {len(trajectories)} of {self._config.num_trajectories})"
            )
        return trajectories

    # ------------------------------------------------------------------ #
    # Route selection
    # ------------------------------------------------------------------ #
    def _select_hubs(self) -> list[int]:
        vertices = sorted(
            self._network.vertex_ids(),
            key=lambda v: (self._network.out_degree(v) + self._network.in_degree(v)),
            reverse=True,
        )
        pool = vertices[: max(self._config.num_hubs * 3, self._config.num_hubs)]
        self._rng.shuffle(pool)
        return pool[: self._config.num_hubs]

    def _pick_route(self) -> Path | None:
        if self._rng.random() < self._config.hub_trip_fraction:
            source, destination = self._rng.sample(self._hubs, 2)
        else:
            source = self._rng.choice(list(self._network.vertex_ids()))
            destination = self._rng.choice(list(self._network.vertex_ids()))
            if source == destination:
                return None
        routes = self._routes_between(source, destination)
        if not routes:
            return None
        if len(routes) > 1 and self._rng.random() < self._config.alternative_route_fraction:
            return routes[1]
        return routes[0]

    def _routes_between(self, source: int, destination: int) -> list[Path]:
        key = (source, destination)
        if key in self._route_cache:
            return self._route_cache[key]
        routes: list[Path] = []
        try:
            primary, _ = shortest_path(
                self._network, source, destination, lambda e: e.free_flow_time()
            )
            if primary.cardinality >= self._config.min_route_edges:
                routes.append(primary)
                penalised_edges = set(primary.edges)

                def penalised_cost(edge: RoadSegment) -> float:
                    factor = 1.6 if edge.edge_id in penalised_edges else 1.0
                    return edge.free_flow_time() * factor

                alternative, _ = shortest_path(self._network, source, destination, penalised_cost)
                if (
                    alternative.edges != primary.edges
                    and alternative.cardinality >= self._config.min_route_edges
                ):
                    routes.append(alternative)
        except NoPathError:
            routes = []
        self._route_cache[key] = routes
        return routes

    # ------------------------------------------------------------------ #
    # Travel-time simulation
    # ------------------------------------------------------------------ #
    def _sample_departure_time(self) -> float:
        if self._rng.random() < self._config.peak_fraction:
            start, end = self._rng.choice(PEAK.intervals)
            return self._rng.uniform(start, end)
        # Off-peak: mid-day window (10:00–15:00) keeps trips inside one regime.
        return self._rng.uniform(10 * 3600.0, 15 * 3600.0)

    def _regime_factor(self, edge: RoadSegment, departure: float) -> float:
        config = self._config
        base = config.peak_congestion if PEAK.contains(departure) else config.off_peak_congestion
        max_speed = self._network.max_speed_limit()
        if edge.speed_limit >= max_speed - 1e-9 and PEAK.contains(departure):
            base += config.arterial_extra_congestion
        return base

    def _simulate_edge_costs(self, route: Path, departure: float) -> tuple[float, ...]:
        config = self._config
        rng = self._rng
        driver_factor = math.exp(rng.gauss(0.0, config.driver_sigma))
        congested = rng.random() < config.congested_state_probability
        costs: list[float] = []
        for edge_id in route.edges:
            edge = self._network.edge(edge_id)
            state_multiplier = config.congested_state_multiplier if congested else 1.0
            noise = math.exp(rng.gauss(0.0, config.edge_noise_sigma))
            seconds = (
                edge.free_flow_time()
                * self._regime_factor(edge, departure)
                * driver_factor
                * state_multiplier
                * noise
            )
            seconds = max(config.resolution, round(seconds / config.resolution) * config.resolution)
            costs.append(seconds)
            # Markov evolution of the congestion state along the route.
            if rng.random() > config.state_persistence:
                congested = not congested
        return tuple(costs)


def generate_trajectories(
    network: RoadNetwork, config: TrajectoryGeneratorConfig | None = None
) -> list[Trajectory]:
    """Convenience wrapper: build a generator and produce one batch of trajectories."""
    return TrajectoryGenerator(network, config).generate()
