"""Fleet scenario: schedule deliveries so they arrive within their time budgets.

The paper motivates stochastic routing with logistics providers (PostNord,
FlexDanmark) that must maximise the number of deliveries arriving within a
promised window.  This example simulates that workflow:

* a dispatcher has a list of deliveries, each with an origin depot, a customer
  location and a promised delivery window (the travel-cost budget),
* for every delivery the stochastic router (V-BS-60) finds the path with the
  highest on-time probability, while a conventional router picks the path
  with the least expected travel time, and
* the dispatcher compares the two plans: expected on-time rate and which
  deliveries become risky under the conventional plan.

Run with::

    python examples/fleet_on_time_delivery.py
"""

from __future__ import annotations

import random

from repro.datasets.synthetic import aalborg_like
from repro.network.algorithms import shortest_path
from repro.routing import RouterSettings, RoutingEngine, RoutingQuery
from repro.tpaths import TPathMinerConfig, build_edge_graph, build_pace_graph
from repro.vpaths import UpdatedPaceGraph


def main() -> None:
    dataset = aalborg_like(scale=0.5)
    network = dataset.network
    peak_trips = list(dataset.peak)
    miner = TPathMinerConfig(tau=20, max_cardinality=4, resolution=5.0)
    pace = build_pace_graph(network, peak_trips, miner)
    edge_graph = build_edge_graph(network, peak_trips, miner)
    updated, _ = UpdatedPaceGraph.build(pace)
    engine = RoutingEngine(pace, updated, settings=RouterSettings(max_budget=3000.0))

    # Deliveries: depot -> customer pairs drawn from observed trips, with budgets set to
    # 110% of the least expected travel time (a tight but realistic promise).
    rng = random.Random(11)
    candidate_pairs = sorted({(t.path.source, t.path.target) for t in peak_trips if t.num_edges >= 4})
    rng.shuffle(candidate_pairs)
    deliveries = candidate_pairs[:8]

    # The whole manifest goes to the engine as one batch: queries are grouped by
    # destination so each customer's heuristic table is built exactly once.
    plans = []
    for depot, customer in deliveries:
        expected_path, expected_time = shortest_path(
            network, depot, customer, lambda e: edge_graph.expected_cost(e.edge_id)
        )
        plans.append((expected_path, expected_time * 1.1))
    # SerialBackend is the default; swap in ThreadBackend(workers=...) or — for
    # engines with a spec (a DatasetRecipe or an artifact-store ArtifactRef) —
    # ProcessBackend to scale the manifest across cores (see
    # examples/batch_serving.py).
    results = engine.route_many(
        [
            RoutingQuery(depot, customer, budget=budget)
            for (depot, customer), (_, budget) in zip(deliveries, plans)
        ],
        method="V-BS-60",
    )

    print(f"{'delivery':>10} | {'budget (min)':>12} | {'P(on time) stochastic':>22} | "
          f"{'P(on time) fastest-expected':>27}")
    stochastic_total, conventional_total = 0.0, 0.0
    for index, (result, (expected_path, budget)) in enumerate(zip(results, plans)):
        conventional_probability = pace.path_cost_distribution(expected_path).prob_at_most(budget)
        stochastic_probability = result.probability if result.found else 0.0
        stochastic_total += stochastic_probability
        conventional_total += conventional_probability
        print(f"{index:>10} | {budget / 60:>12.1f} | {stochastic_probability:>22.3f} | "
              f"{conventional_probability:>27.3f}")

    count = len(deliveries)
    print("-" * 80)
    print(f"expected on-time deliveries (stochastic plan):    {stochastic_total:.2f} / {count}")
    print(f"expected on-time deliveries (conventional plan):  {conventional_total:.2f} / {count}")

    stats = engine.stats()
    print(f"engine stats: {stats.queries_total} queries, "
          f"{stats.cache_misses} heuristic builds "
          f"({stats.heuristic_build_seconds:.2f}s offline), "
          f"{stats.cache_hits} cache hits")


if __name__ == "__main__":
    main()
