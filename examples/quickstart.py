"""Quickstart: build a PACE model from trajectories and answer an arriving-on-time query.

This walks through the full pipeline of the paper on a small synthetic city:

1. generate a road network and a fleet of correlated trajectories,
2. mine T-paths and build the PACE uncertain road network,
3. build V-paths (the updated graph ``G_p+``),
4. route with the fastest method, V-BS-60 (budget-specific heuristic plus
   V-path based stochastic-dominance pruning), and
5. compare against the no-heuristic baseline T-None.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.datasets.synthetic import tiny_dataset
from repro.network.algorithms import shortest_path
from repro.routing import RouterSettings, RoutingEngine, RoutingQuery
from repro.tpaths import TPathMinerConfig, build_edge_graph, build_pace_graph
from repro.vpaths import UpdatedPaceGraph


def main() -> None:
    # 1. A deterministic synthetic city with ~400 trips (peak and off-peak).
    dataset = tiny_dataset()
    print(f"dataset: {dataset.name}, {dataset.network.num_vertices} vertices, "
          f"{len(dataset.trajectories)} trajectories")

    # 2. Mine T-paths from the peak-hour trajectories and build the PACE graph.
    miner = TPathMinerConfig(tau=20, max_cardinality=4, resolution=5.0)
    pace = build_pace_graph(dataset.network, list(dataset.peak), miner)
    print(f"PACE graph: {pace.num_tpaths} T-paths (tau={miner.tau})")

    # 3. Build the V-path closure so stochastic-dominance pruning becomes sound.
    updated, stats = UpdatedPaceGraph.build(pace)
    print(f"V-paths: {stats.count} built in {stats.build_seconds:.2f}s")

    # 4. Pick a query: opposite corners of the city, with a budget at 105% of the
    #    least *expected* travel time (tight enough that route choice matters).
    vertices = sorted(dataset.network.vertex_ids())
    source, destination = vertices[0], vertices[-1]
    edge_graph = build_edge_graph(dataset.network, list(dataset.peak), miner)
    _, expected_time = shortest_path(
        dataset.network, source, destination, lambda e: edge_graph.expected_cost(e.edge_id)
    )
    query = RoutingQuery(source=source, destination=destination, budget=expected_time * 1.05)
    print(f"query: {source} -> {destination}, budget {query.budget:.0f}s "
          f"(105% of the {expected_time:.0f}s least expected time)")

    # One engine serves every method over the same graphs, sharing the
    # destination-keyed heuristic cache across them.  max_explored bounds the
    # exhaustive baseline; the guided router never comes close to it.
    settings = RouterSettings(max_budget=2 * query.budget, max_explored=5000)
    engine = RoutingEngine(pace, updated, settings=settings)
    result = engine.route(query, method="V-BS-60")
    print(result.summary())
    if result.found:
        print(f"  route edges: {list(result.path.edges)}")
        print(f"  P(cost <= {query.budget:.0f}) = {result.probability:.3f}, "
              f"expected cost = {result.distribution.expectation():.0f}s")

    # 5. The baseline explores far more candidate paths for the same answer.
    baseline_result = engine.route(query, method="T-None")
    print(baseline_result.summary())
    if result.found and baseline_result.found:
        speedup = baseline_result.runtime_seconds / max(result.runtime_seconds, 1e-9)
        print(f"speed-up of V-BS-60 over T-None on this query: {speedup:.1f}x")


if __name__ == "__main__":
    main()
