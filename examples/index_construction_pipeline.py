"""Offline index-construction pipeline: from raw GPS traces to a routable PACE index.

The paper's system is an offline/online split: heavy pre-computation (map
matching, cleaning, T-path mining, V-path closure, heuristic tables) buys
sub-second online routing.  This example runs the *entire* offline pipeline,
starting from simulated raw GPS observations rather than ready-made
trajectories, and reports the size and cost of every stage:

raw GPS traces -> HMM map matching -> outlier filtering -> T-path mining ->
PACE graph -> V-path closure -> per-destination heuristic tables ->
persisted heuristic bundle -> a fresh serving process prewarmed from disk.

Run with::

    python examples/index_construction_pipeline.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.datasets.synthetic import tiny_dataset
from repro.routing import RouterSettings, RoutingEngine, RoutingQuery
from repro.tpaths import TPathMinerConfig, build_pace_graph
from repro.trajectories import (
    GpsSimulatorConfig,
    HmmMapMatcher,
    MapMatcherConfig,
    clean_trajectories,
    simulate_gps_traces,
)
from repro.vpaths import UpdatedPaceGraph


def stage(name: str):
    print(f"\n--- {name} ---")
    return time.perf_counter()


def done(started: float) -> None:
    print(f"    ({time.perf_counter() - started:.2f}s)")


def main() -> None:
    dataset = tiny_dataset()
    network = dataset.network
    ground_truth = list(dataset.peak)[:80]

    started = stage("1. Simulating raw GPS traces (the paper starts from 1 Hz / 0.2 Hz GPS data)")
    traces = simulate_gps_traces(
        network, ground_truth, GpsSimulatorConfig(sampling_interval=5.0, noise_sigma=10.0)
    )
    print(f"    {len(traces)} traces, {sum(len(t.points) for t in traces)} GPS points")
    done(started)

    started = stage("2. HMM map matching")
    matcher = HmmMapMatcher(network, MapMatcherConfig(candidate_radius=100.0))
    matched = []
    for trace in traces:
        try:
            result = matcher.match(trace)
        except Exception:  # noqa: BLE001 - a real pipeline logs and skips unmatchable traces
            continue
        matched.append(result.to_trajectory(network, trace))
    print(f"    matched {len(matched)} / {len(traces)} traces")
    done(started)

    started = stage("3. Outlier filtering")
    cleaned = clean_trajectories(network, matched)
    print(f"    kept {len(cleaned)} trajectories after cleaning")
    done(started)

    started = stage("4. T-path mining and PACE graph construction")
    miner = TPathMinerConfig(tau=10, max_cardinality=4, resolution=5.0)
    pace = build_pace_graph(network, cleaned, miner)
    print(f"    {pace.num_tpaths} T-paths (tau={miner.tau})")
    done(started)

    started = stage("5. V-path closure (enables stochastic-dominance pruning)")
    updated, stats = UpdatedPaceGraph.build(pace)
    print(f"    {stats.count} V-paths in {stats.rounds} rounds; "
          f"average out-degree {updated.average_out_degree():.2f}")
    done(started)

    started = stage("6. Budget-specific heuristic tables (vectorized Eq. 5 Bellman sweep)")
    destination = sorted(network.vertex_ids())[-1]
    settings = RouterSettings(max_budget=1200.0)
    offline = RoutingEngine(pace, updated, settings=settings)
    offline.prewarm("T-BS-60", [destination])
    heuristic = offline.router("T-BS-60").heuristic_for(destination)
    print(f"    table for destination {destination}: "
          f"{heuristic.table.storage_cells()} stored cells, "
          f"{heuristic.storage_bytes() / 1024:.1f} KB, built in {heuristic.build_seconds:.3f}s "
          f"({heuristic.sweeps_performed} Bellman sweeps)")
    done(started)

    started = stage("7. Persist the heuristics and prewarm a fresh serving process from disk")
    bundle = Path(tempfile.mkdtemp()) / "heuristics.json"
    saved = offline.save_heuristics(bundle)
    serving = RoutingEngine(pace, updated, settings=settings)
    loaded = serving.prewarm(bundle)
    print(f"    saved {saved} heuristics to {bundle}; fresh engine loaded {loaded}")
    source = sorted(network.vertex_ids())[0]
    result = serving.route(
        RoutingQuery(source=source, destination=destination, budget=600.0), method="T-BS-60"
    )
    print(f"    served {source}->{destination} without rebuilding: "
          f"P(on time) = {result.probability:.3f}, "
          f"cache misses = {serving.heuristic_cache.misses}")
    done(started)

    print("\nThe index (PACE graph + V-paths + heuristic tables) is now ready for online routing;")
    print("see examples/quickstart.py for the online side.")


if __name__ == "__main__":
    main()
