"""Fleet management with the SQLite artifact catalog: ``repro catalog``.

One deployment is an artifact store; an operation has many — one per city,
regime and format generation.  This example runs the whole fleet story
against two tiny stores:

1. mine one engine and persist it twice (a v1-format store and a v2-format
   store, standing in for an old and a new deployment),
2. register both into a catalog and answer fleet questions (which stores
   serve this graph fingerprint?  which are still on v1 artifacts?),
3. republish one store behind the catalog's back and watch ``--stale``
   detect the drift, then ``sync`` heal it,
4. start a fleet-wide ``migrate`` to v2, kill it after the first store, and
   resume — the finished store is **not** redone (its attempt count stays
   at 1), which is the whole point of the per-step operations state.

Run with::

    python examples/fleet_catalog.py

Exits non-zero if any contract is violated.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.catalog import (
    CatalogDB,
    create_operation,
    find_resumable,
    find_stores,
    get_operation,
    list_stores,
    migrate_worker,
    register_store,
    run_operation,
    store_staleness,
    sync_store,
    verify_fleet,
)
from repro.routing import DatasetRecipe, RouterSettings, RoutingEngine

SETTINGS = RouterSettings(max_budget=900.0, max_explored=2000)


def main() -> int:
    failures: list[str] = []

    def check(condition: bool, label: str) -> None:
        print(("  [ok]  " if condition else "  [FAIL]") + " " + label)
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory(prefix="fleet-catalog-") as scratch:
        root = Path(scratch)

        print("\n--- 1. Mine once, persist two deployments ---")
        engine = DatasetRecipe(dataset="tiny", regime="peak", tau=20).build_engine(
            settings=SETTINGS
        )
        old_store, new_store = root / "city-v1", root / "city-v2"
        engine.save_artifacts(old_store, format_version=1)
        engine.save_artifacts(new_store, format_version=2)
        print(f"    {old_store.name} (v1 artifacts), {new_store.name} (v2 artifacts)")

        print("\n--- 2. Register the fleet and query it ---")
        with CatalogDB(root / "catalog.sqlite") as db:
            for store in (old_store, new_store):
                record = register_store(db, store)
                print(f"    registered {record.path} (pace {record.pace_fingerprint[:12]})")
            records = list_stores(db)
            check(len(records) == 2, "both stores registered")

            fingerprint = records[0].pace_fingerprint
            matching = find_stores(db, graph_fingerprint=fingerprint)
            check(len(matching) == 2, "fingerprint query spans the fleet")
            still_v1 = find_stores(db, format_version=1)
            check(
                [Path(r.path).name for r in still_v1] == ["city-v1"],
                "format-version query finds the v1 store",
            )
            check(all(v.ok for v in verify_fleet(db)), "deep verify: fleet is clean")

            print("\n--- 3. Drift detection and sync ---")
            engine.save_artifacts(new_store, provenance={"republished": True})
            record = next(r for r in list_stores(db) if r.path == str(new_store.resolve()))
            check(store_staleness(record) == "drifted", "behind-the-back republish detected")
            _, changed = sync_store(db, new_store)
            check(changed, "sync re-indexed the drifted store")
            check(
                all(store_staleness(r) is None for r in list_stores(db)),
                "fleet fresh again after sync",
            )

            print("\n--- 4. Fleet migration, killed after store 1, then resumed ---")
            operation = create_operation(db, "migrate", {"to": 2}, list_stores(db))
            real_worker = migrate_worker(2)
            calls: list[str] = []

            def killer(db_, record):
                calls.append(record.path)
                if len(calls) == 2:
                    raise KeyboardInterrupt  # the operator pulls the plug
                return real_worker(db_, record)

            try:
                run_operation(db, operation, killer)
            except KeyboardInterrupt:
                print("    interrupted after the first store (simulated ^C)")

            statuses = [step.status for step in get_operation(db, operation.operation_id).steps]
            check(statuses == ["done", "running"], f"mid-kill step state: {statuses}")

            resumable = find_resumable(db, "migrate", {"to": 2})
            check(
                resumable is not None
                and resumable.operation_id == operation.operation_id,
                "interrupted operation found by kind + parameters",
            )
            finished = run_operation(db, resumable, real_worker)
            check(finished.status == "done", "resume finished the fleet")
            attempts = {Path(s.path).name: s.attempts for s in finished.steps}
            print(f"    attempts per store: {attempts}")
            check(attempts[calls[0].rsplit("/", 1)[-1]] == 1, "finished store was not redone")
            check(find_stores(db, format_version=1) == [], "no v1 stores left")

            booted = RoutingEngine.from_artifacts(old_store)
            check(
                booted.pace_graph.content_fingerprint() == fingerprint,
                "migrated store still boots with the same graph fingerprint",
            )

    print()
    if failures:
        print(f"{len(failures)} contract violation(s):")
        for label in failures:
            print(f"  - {label}")
        return 1
    print("fleet catalog example: all contracts held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
