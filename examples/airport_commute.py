"""Airport commute: risk-aware route choice under a hard deadline.

This reproduces the paper's Table 1 intuition on a full network: the route
with the smallest *average* travel time is not necessarily the route with the
best chance of catching a flight.  We take one origin–destination pair, sweep
the departure-time budget from tight to generous, and show how the best route
(and its on-time probability) changes — including the peak vs. off-peak
difference captured by the time-dependent PACE models.

On a city-scale network the stochastic route's probability is at least the
expected-time route's; on this small synthetic city the two often coincide,
and occasional inversions can appear because the router ranks candidates by
the convolution of V-path/T-path weights while the reported probabilities are
re-evaluated under exact PACE semantics (see EXPERIMENTS.md, "known gaps").

Run with::

    python examples/airport_commute.py
"""

from __future__ import annotations

from repro.datasets.synthetic import aalborg_like
from repro.network.algorithms import shortest_path
from repro.routing import RouterSettings, RoutingEngine, RoutingQuery
from repro.tpaths import TPathMinerConfig, build_edge_graph, build_time_dependent_index
from repro.vpaths import UpdatedPaceGraph


def main() -> None:
    dataset = aalborg_like(scale=0.5)
    network = dataset.network
    miner = TPathMinerConfig(tau=20, max_cardinality=4, resolution=5.0)

    # Separate PACE models for peak and off-peak hours (time-dependent uncertainty).
    index = build_time_dependent_index(network, list(dataset.trajectories), miner)

    # Pick a commute: the most frequently travelled long origin-destination pair.
    pair_counts: dict[tuple[int, int], int] = {}
    for trajectory in dataset.trajectories:
        if trajectory.num_edges >= 5:
            key = (trajectory.path.source, trajectory.path.target)
            pair_counts[key] = pair_counts.get(key, 0) + 1
    (home, airport), _ = max(pair_counts.items(), key=lambda item: item[1])
    print(f"commute: vertex {home} -> vertex {airport}")

    for regime_name, departure in (("peak", 8 * 3600.0), ("off-peak", 13 * 3600.0)):
        pace = index.graph_named(regime_name)
        edge_graph = build_edge_graph(network, list(dataset.regime(regime_name)), miner)
        updated, _ = UpdatedPaceGraph.build(pace)
        engine = RoutingEngine(pace, updated, settings=RouterSettings(max_budget=3600.0))
        fastest_path, expected_time = shortest_path(
            network, home, airport, lambda e: edge_graph.expected_cost(e.edge_id)
        )
        # The budget sweep is one batch to the engine; all six queries share the
        # airport's heuristic table, which is built once.
        fractions = (0.8, 0.9, 1.0, 1.1, 1.25, 1.5)
        results = engine.route_many(
            [
                RoutingQuery(home, airport, budget=expected_time * fraction, departure_time=departure)
                for fraction in fractions
            ],
            method="V-BS-60",
        )
        print(f"\n=== {regime_name} (least expected travel time {expected_time / 60:.1f} min) ===")
        print(f"{'budget':>10} | {'P(on time) best route':>22} | {'P(on time) avg-fastest route':>28} | route changed?")
        for fraction, result in zip(fractions, results):
            budget = expected_time * fraction
            fastest_probability = pace.path_cost_distribution(fastest_path).prob_at_most(budget)
            best_probability = result.probability if result.found else 0.0
            changed = result.found and result.path.edges != fastest_path.edges
            print(
                f"{fraction:>9.0%} | {best_probability:>22.3f} | {fastest_probability:>28.3f} | "
                f"{'yes' if changed else 'no'}"
            )


if __name__ == "__main__":
    main()
