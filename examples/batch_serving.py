"""Batch serving walkthrough: mine once, boot from artifacts, serve multiprocess.

This is the deployment story end to end:

1. mine a routing engine from a :class:`~repro.routing.DatasetRecipe` — a
   serialisable recipe naming a deterministic dataset and the offline
   pipeline parameters — and pre-compute the hot destinations' heuristics
   (the offline investment),
2. persist everything into a content-addressed artifact store
   (:meth:`~repro.routing.RoutingEngine.save_artifacts`): index, heuristic
   tables, and a manifest with graph fingerprints and build provenance,
3. cold-boot a *serving* engine from the store
   (:meth:`~repro.routing.RoutingEngine.from_artifacts`) — zero re-mining,
   zero heuristic rebuilds — and serve a batch through a
   :class:`~repro.routing.ProcessBackend`, whose workers each boot from the
   same store (fingerprint-verified) so the GIL-bound search loops scale
   across cores, and
4. answer requests through the typed :class:`~repro.routing.RoutingService`
   boundary — strict-JSON requests and responses with a structured error
   taxonomy instead of exceptions.

Run with::

    python examples/batch_serving.py
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

from repro.routing import (
    DatasetRecipe,
    ProcessBackend,
    RouteRequest,
    RouterSettings,
    RoutingEngine,
    RoutingQuery,
    RoutingService,
)


def main() -> None:
    work_dir = Path(tempfile.mkdtemp(prefix="batch_serving_"))
    try:
        _run(work_dir)
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)


def _run(work_dir: Path) -> None:
    # 1. Offline: mine the models once and build the hot destinations' heuristics.
    recipe = DatasetRecipe(dataset="tiny", regime="peak", tau=20)
    mined = recipe.build_engine(settings=RouterSettings(max_budget=900.0))
    print(f"engine mined from {recipe}")
    print(f"PACE graph fingerprint: {mined.pace_graph.content_fingerprint()}")

    vertices = sorted(mined.pace_graph.network.vertex_ids())
    depot, customers = vertices[0], [vertices[-1], vertices[len(vertices) // 2]]
    mined.prewarm("T-BS-60", customers)

    # 2. Persist the whole offline investment into one artifact store.
    store = work_dir / "store"
    manifest = mined.save_artifacts(store)
    print(f"saved artifacts {sorted(manifest.artifacts)} to {store}")

    # 3. Online: cold-boot the serving engine from the store (never re-mine)
    #    and fan out over worker processes.  Each worker boots from the same
    #    store — fingerprint-verified, zero rebuilds — and answers
    #    destination-grouped chunks; results are identical to serial, in
    #    input order.
    engine = RoutingEngine.from_artifacts(store)
    print(f"serving engine booted from {engine.stats().provenance['source']}")
    queries = [
        RoutingQuery(depot, customer, budget=budget)
        for customer in customers
        for budget in (300.0, 420.0)
    ]
    with ProcessBackend(workers=2) as backend:
        results = engine.route_many(queries, method="T-BS-60", backend=backend)
    for result in results:
        print(" ", result.summary())

    # 4. The same traffic through the typed service boundary: one JSON-safe
    #    response per request, errors as taxonomy codes instead of exceptions.
    service = RoutingService(engine, default_method="T-BS-60")
    responses = service.handle_batch(
        [
            RouteRequest(source=depot, destination=customers[0], budget=300.0, request_id="ok"),
            RouteRequest(source=depot, destination=987654, budget=300.0, request_id="lost"),
            {"source": depot, "budget": "soon", "request_id": "mangled"},
        ]
    )
    for response in responses:
        print(" ", json.dumps(response.to_dict(), default=str)[:120], "...")

    stats = engine.stats()
    print(
        f"engine stats: {stats.queries_total} queries, {stats.cache_misses} heuristic "
        f"builds ({stats.heuristic_build_seconds:.2f}s), {stats.cache_hits} cache hits"
    )


if __name__ == "__main__":
    main()
