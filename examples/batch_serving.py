"""Batch serving walkthrough: spec-built engine, process workers, typed responses.

This is the multiprocess prewarm-then-serve deployment story end to end:

1. build a routing engine from an :class:`~repro.routing.EngineSpec` — a
   serialisable recipe naming a deterministic dataset and the offline
   pipeline parameters,
2. pre-compute the hot destinations' heuristics once and persist them to a
   bundle (the offline investment),
3. serve a batch through a :class:`~repro.routing.ProcessBackend`: each
   worker process rebuilds the engine from the *spec* (verified against the
   parent's graph content fingerprints) and prewarms from the *bundle*, so
   workers run zero heuristic builds and the GIL-bound search loops scale
   across cores, and
4. answer requests through the typed :class:`~repro.routing.RoutingService`
   boundary — strict-JSON requests and responses with a structured error
   taxonomy instead of exceptions.

Run with::

    python examples/batch_serving.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.routing import (
    EngineSpec,
    ProcessBackend,
    RouteRequest,
    RouterSettings,
    RoutingQuery,
    RoutingService,
)


def main() -> None:
    # 1. The spec is all a worker process needs to rebuild these exact graphs.
    spec = EngineSpec(dataset="tiny", regime="peak", tau=20)
    engine = spec.build_engine(settings=RouterSettings(max_budget=900.0))
    print(f"engine built from {spec}")
    print(f"PACE graph fingerprint: {engine.pace_graph.content_fingerprint()}")

    vertices = sorted(engine.pace_graph.network.vertex_ids())
    depot, customers = vertices[0], [vertices[-1], vertices[len(vertices) // 2]]

    # 2. Offline: build the hot destinations' heuristics once, persist them.
    engine.prewarm("T-BS-60", customers)
    bundle = Path(tempfile.gettempdir()) / "batch_serving_heuristics.json"
    saved = engine.save_heuristics(bundle)
    print(f"prewarmed {len(customers)} destinations, saved {saved} bundle entries")

    # 3. Online: the manifest fans out over worker processes.  Workers
    #    initialise once (spec + bundle) and then answer destination-grouped
    #    chunks; results are identical to serial, in input order.
    queries = [
        RoutingQuery(depot, customer, budget=budget)
        for customer in customers
        for budget in (300.0, 420.0)
    ]
    with ProcessBackend(workers=2, heuristics_path=bundle) as backend:
        results = engine.route_many(queries, method="T-BS-60", backend=backend)
    for result in results:
        print(" ", result.summary())

    # 4. The same traffic through the typed service boundary: one JSON-safe
    #    response per request, errors as taxonomy codes instead of exceptions.
    service = RoutingService(engine, default_method="T-BS-60")
    responses = service.handle_batch(
        [
            RouteRequest(source=depot, destination=customers[0], budget=300.0, request_id="ok"),
            RouteRequest(source=depot, destination=987654, budget=300.0, request_id="lost"),
            {"source": depot, "budget": "soon", "request_id": "mangled"},
        ]
    )
    for response in responses:
        print(" ", json.dumps(response.to_dict(), default=str)[:120], "...")

    stats = engine.stats()
    print(
        f"engine stats: {stats.queries_total} queries, {stats.cache_misses} heuristic "
        f"builds ({stats.heuristic_build_seconds:.2f}s), {stats.cache_hits} cache hits"
    )
    bundle.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
