"""Serving-tier walkthrough: boot from a store, storm it, crash it, reload it.

The online half of the mine-once/serve-forever deployment story, end to end:

1. **boot** a :class:`~repro.serving.RouteServer` from a persisted artifact
   store (pass a store directory as ``argv[1]`` — CI passes its cached
   city-scale store — or let the script build a tiny one),
2. **storm** it with concurrent strict-JSON HTTP requests and verify every
   answer is structured (an ``ok`` route or a taxonomy error — never a bare
   5xx) and matches a directly-computed
   :class:`~repro.routing.RoutingService` answer,
3. **crash** a process-pool worker mid-traffic with the deterministic fault
   switchboard (``POST /faults``) and watch the serial fallback answer every
   request while the pool respawns and ``/healthz`` returns to 200, and
4. **hot-reload**: republish the store's manifest and watch the server swap
   in a fresh engine generation without dropping a request.

Run with::

    PYTHONPATH=src python examples/serve_city.py [store-dir]

Exits non-zero if any step's contract is violated (CI runs it as a gate).
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.routing import DatasetRecipe, RouterSettings, RoutingEngine, RoutingService
from repro.serving import RouteServer, ServerConfig

METHOD = "V-BS-60"


def http_json(url: str, payload: object | None = None) -> tuple[int, dict | list]:
    """POST ``payload`` (or GET when ``None``), decoding the JSON answer."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url,
        data=data,
        method="GET" if data is None else "POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def wait_until(predicate, timeout: float = 120.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.1)
    return predicate()


def build_tiny_store(root: Path) -> Path:
    print("no store given: mining the tiny city into", root)
    engine = DatasetRecipe(dataset="tiny", regime="peak", tau=20).build_engine(
        settings=RouterSettings(max_budget=900.0, max_explored=2000)
    )
    engine.save_artifacts(root, provenance={"builder": "examples/serve_city.py"})
    return root


def pick_queries(store: Path, count: int) -> list[dict]:
    """Deterministic request payloads over the store's own vertex set."""
    engine = RoutingEngine.from_artifacts(store)
    vertices = sorted(engine.pace_graph.network.vertex_ids())
    budget = 0.8 * engine.settings.max_budget
    destinations = [vertices[-1], vertices[len(vertices) // 2], vertices[len(vertices) // 3]]
    return [
        {
            "source": vertices[i % (len(vertices) // 2)],
            "destination": destinations[i % len(destinations)],
            "budget": budget,
            "request_id": f"storm-{i}",
        }
        for i in range(count)
    ]


def storm(url: str, requests: list[dict], threads: int) -> tuple[int, list]:
    """Fire the requests from ``threads`` clients; returns (answered, problems)."""
    problems: list = []
    answered = [0]
    lock = threading.Lock()
    chunks = [requests[i::threads] for i in range(threads)]

    def client(chunk: list[dict]) -> None:
        for payload in chunk:
            status, body = http_json(url + "/route", payload)
            with lock:
                answered[0] += 1
                ok_or_taxonomy = isinstance(body, dict) and (
                    body.get("ok") or "error" in body
                )
                if status != 200 or not ok_or_taxonomy:
                    problems.append((status, body))

    workers = [threading.Thread(target=client, args=(chunk,)) for chunk in chunks]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    return answered[0], problems


def main(argv: list[str]) -> int:
    failures: list[str] = []

    def check(condition: bool, label: str) -> None:
        print(("  [ok]  " if condition else "  [FAIL]") + " " + label)
        if not condition:
            failures.append(label)

    with tempfile.TemporaryDirectory(prefix="serve-city-") as scratch:
        store = Path(argv[1]) if len(argv) > 1 else build_tiny_store(Path(scratch) / "store")

        config = ServerConfig(
            default_method=METHOD,
            backend="process",
            workers=2,
            max_concurrency=4,
            queue_limit=16,
            reload_poll_seconds=1.0,
            enable_fault_injection=True,
            backoff_base_seconds=0.05,
            backoff_cap_seconds=1.0,
        )
        requests = pick_queries(store, count=60)

        print(f"booting repro serve from {store} (backend=process, workers=2)")
        started = time.perf_counter()
        server = RouteServer(store, config).start()
        url = server.url
        try:
            print(f"listening on {url} ({time.perf_counter() - started:.1f}s to boot)\n")

            print("step 1: parity — HTTP answer == direct RoutingService answer")
            direct = RoutingService(
                RoutingEngine.from_artifacts(store), default_method=METHOD
            ).handle(requests[0])
            status, body = http_json(url + "/route", requests[0])
            check(status == 200, "parity request answered 200")
            check(
                isinstance(body, dict) and body.get("ok") == direct.ok,
                "HTTP ok-flag matches direct service",
            )
            if direct.ok and isinstance(body, dict):
                check(
                    body.get("path_vertices") == list(direct.path_vertices or ()),
                    "HTTP path matches direct service",
                )

            print("\nstep 2: request storm (60 requests, 6 clients)")
            answered, problems = storm(url, requests, threads=6)
            check(answered == len(requests), f"all {len(requests)} requests answered")
            check(not problems, f"every answer structured ({len(problems)} problems)")

            print("\nstep 3: worker crash drill")
            status, _ = http_json(url + "/faults", {"fault": "crash-next-worker"})
            check(status == 200, "crash-next-worker armed")
            answered, problems = storm(url, requests[:12], threads=3)
            check(
                answered == 12 and not problems,
                "all requests answered through the crash (serial fallback)",
            )
            _, stats = http_json(url + "/stats")
            check(
                stats["resilience"]["backend_failures"] >= 1,
                "pool failure recorded in /stats (not silent)",
            )
            recovered = wait_until(lambda: http_json(url + "/healthz")[0] == 200)
            check(recovered, "pool respawned; /healthz back to 200")

            print("\nstep 4: hot reload (republish the manifest)")
            generation = http_json(url + "/stats")[1]["reload"]["generation"]
            manifest_path = store / "manifest.json"
            manifest = json.loads(manifest_path.read_text())
            manifest.setdefault("provenance", {})["republish"] = time.time()
            manifest_path.write_text(json.dumps(manifest, allow_nan=False))
            reloaded = wait_until(
                lambda: http_json(url + "/stats")[1]["reload"]["generation"] > generation
            )
            check(reloaded, f"engine swapped to generation {generation + 1}")
            answered, problems = storm(url, requests[:12], threads=3)
            check(
                answered == 12 and not problems, "reloaded engine serves the storm"
            )
            status, _ = http_json(url + "/healthz")
            check(status == 200, "healthy after reload")

            _, stats = http_json(url + "/stats")
            print(
                f"\nserved {stats['server']['http_requests']} HTTP requests, "
                f"{stats['engine']['queries_total']} engine queries, "
                f"{stats['admission']['rejected']} rejected, "
                f"{stats['resilience']['fallback_queries']} served via fallback, "
                f"{stats['reload']['reloads']} hot reloads"
            )
        finally:
            server.stop()

    if failures:
        print(f"\nFAILED: {len(failures)} contract violations: {failures}")
        return 1
    print("\nall serving-tier contracts held")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
